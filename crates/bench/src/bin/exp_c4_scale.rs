//! C4 — detection effort (§2/§3.3.3): match-operator cost as the number
//! of deployed queries and the pattern length grow, plus the effect of
//! the window-merging optimisation.

use std::time::Instant;

use gesto_bench::{learn_gesture, perform, Table};
use gesto_cep::Engine;
use gesto_kinect::{frames_to_tuples, gestures, kinect_schema, NoiseModel, Persona, KINECT_STREAM};
use gesto_learn::query_gen::{generate_query, QueryStyle};
use gesto_learn::sampling::{CentroidMode, Strategy};
use gesto_learn::validate::merge_adjacent_windows;
use gesto_learn::{LearnerConfig, Metric, Threshold};
use gesto_stream::Tuple;
use gesto_transform::standard_catalog;

/// Measures sustained throughput (tuples/s) of `engine` over `tuples`.
fn throughput(engine: &Engine, tuples: &[Tuple], repeats: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..repeats {
        engine.run_batch(KINECT_STREAM, tuples).expect("stream ok");
    }
    (tuples.len() * repeats) as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    println!("C4 — detection effort: engine scalability");
    println!("===========================================\n");
    let persona = Persona::reference().with_noise(NoiseModel::realistic());
    let schema = kinect_schema();

    // Workload: 10 s of mixed movement.
    let mut frames = Vec::new();
    let mut performer = gesto_kinect::Performer::new(persona.clone(), 0);
    for spec in [
        gestures::swipe_right(),
        gestures::circle(),
        gestures::push(),
    ] {
        frames.extend(performer.render_padded(&spec, 300, 300));
    }
    let tuples = frames_to_tuples(&frames, &schema);
    println!(
        "workload: {} frames of mixed movement, replayed repeatedly\n",
        tuples.len()
    );

    // (a) throughput vs number of deployed queries.
    println!("(a) throughput vs deployed queries");
    let mut table = Table::new(&["queries", "tuples/s", "x real-time (30 Hz)"]);
    let base_specs = [
        gestures::swipe_right(),
        gestures::swipe_left(),
        gestures::swipe_up(),
        gestures::swipe_down(),
        gestures::push(),
        gestures::pull(),
        gestures::circle(),
        gestures::wave(),
        gestures::raise_both_hands(),
        gestures::zigzag(),
    ];
    for n in [1usize, 2, 4, 8, 16, 32] {
        let engine = Engine::new(standard_catalog());
        for i in 0..n {
            let spec = &base_specs[i % base_specs.len()];
            let mut def = learn_gesture(spec, 2, 20_000 + i as u64, LearnerConfig::default());
            def.name = format!("{}_{i}", spec.name);
            engine
                .deploy(generate_query(&def, QueryStyle::TransformedView))
                .unwrap();
        }
        let tps = throughput(&engine, &tuples, 3);
        table.row(&[
            format!("{n}"),
            format!("{tps:.0}"),
            format!("{:.0}x", tps / 30.0),
        ]);
    }
    table.print();

    // (b) throughput vs pattern length (pose count).
    println!("\n(b) throughput vs pattern length (single query)");
    let mut table = Table::new(&["poses", "predicates", "tuples/s"]);
    for fraction in [0.5, 0.22, 0.1, 0.05, 0.02] {
        let def = learn_gesture(
            &gestures::zigzag(),
            2,
            21_000,
            LearnerConfig {
                sampling: Strategy::DistanceBased {
                    metric: Metric::Euclidean,
                    threshold: Threshold::RelativePathFraction(fraction),
                    centroid: CentroidMode::Reference,
                },
                ..LearnerConfig::default()
            },
        );
        let engine = Engine::new(standard_catalog());
        engine
            .deploy(generate_query(&def, QueryStyle::TransformedView))
            .unwrap();
        let tps = throughput(&engine, &tuples, 3);
        table.row(&[
            format!("{}", def.pose_count()),
            format!("{}", def.predicate_count()),
            format!("{tps:.0}"),
        ]);
    }
    table.print();

    // (c) window-merging optimisation ablation.
    println!("\n(c) §3.3.3 window merging: cost before/after");
    let def = learn_gesture(
        &gestures::circle(),
        3,
        22_000,
        LearnerConfig {
            sampling: Strategy::DistanceBased {
                metric: Metric::Euclidean,
                threshold: Threshold::RelativePathFraction(0.06),
                centroid: CentroidMode::Reference,
            },
            ..LearnerConfig::default()
        },
    );
    let mut table = Table::new(&["variant", "poses", "tuples/s", "still detects"]);
    for (label, merged) in [("as learned", false), ("after merge pass", true)] {
        let mut d = def.clone();
        if merged {
            merge_adjacent_windows(&mut d, 2.0);
        }
        let engine = Engine::new(standard_catalog());
        engine
            .deploy(generate_query(&d, QueryStyle::TransformedView))
            .unwrap();
        let tps = throughput(&engine, &tuples, 3);
        // Correctness: a fresh circle still detected?
        engine.reset_runs();
        let check = frames_to_tuples(&perform(&gestures::circle(), &persona, 777), &schema);
        let ok = engine
            .run_batch(KINECT_STREAM, &check)
            .unwrap()
            .iter()
            .any(|x| x.gesture == d.name);
        table.row(&[
            label.to_string(),
            format!("{}", d.pose_count()),
            format!("{tps:.0}"),
            format!("{ok}"),
        ]);
    }
    table.print();
}

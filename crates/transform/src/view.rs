//! Registering the `kinect_t` view in a stream catalog.
//!
//! "We defined a `kinect_t` view letting AnduIN calculate all coordinates
//! on-the-fly" (§3.2). The view is a [`KinectTOp`]: a slot-compiled
//! operator holding a stateful [`Transformer`]. Field positions are
//! resolved once (via [`KinectSlots`]), so the per-frame work is pure
//! slice indexing — no name lookups, no intermediate tuple, and the only
//! allocation is the output tuple's value vector.

use std::sync::Arc;

use gesto_kinect::{schema_named, KinectSlots, SkeletonFrame, KINECT_STREAM};
use gesto_stream::{Catalog, ColumnBlock, Emit, Operator, SchemaRef, StreamError, Tuple, ViewDef};

use crate::transform::{TransformConfig, Transformer};

/// Name of the transformed view.
pub const KINECT_T: &str = "kinect_t";

/// Schema of the transformed view (kinect layout under the view name).
pub fn kinect_t_schema() -> SchemaRef {
    schema_named(KINECT_T, "")
}

/// The `kinect_t` view operator: reads joints out of the input tuple by
/// slot, applies the user-invariant [`Transformer`], and writes the
/// transformed joints into an output tuple by slot.
pub struct KinectTOp {
    out_schema: SchemaRef,
    out_slots: KinectSlots,
    /// Input slot table, re-resolved only when the input schema instance
    /// changes (same `Arc` ⇒ same layout).
    in_slots: Option<(SchemaRef, KinectSlots)>,
    transformer: Transformer,
    /// Reusable frame scratch (read target + transform output live on the
    /// stack; this avoids re-zeroing the read target every frame).
    scratch: SkeletonFrame,
    /// Transformed frames of the current batch while block capture is on
    /// (see [`Operator::fill_block`]): the columnar lanes are then
    /// written straight from these via [`KinectSlots::write_block`],
    /// skipping the tuple→lane rebuild.
    capture: Vec<SkeletonFrame>,
    capturing: bool,
}

impl KinectTOp {
    /// Creates the operator emitting tuples of `out_schema` (which must
    /// have the kinect layout, e.g. [`kinect_t_schema`]).
    pub fn new(config: TransformConfig, out_schema: SchemaRef) -> Self {
        let out_slots = KinectSlots::resolve(&out_schema, "");
        Self {
            out_schema,
            out_slots,
            in_slots: None,
            transformer: Transformer::new(config),
            scratch: SkeletonFrame::empty(0, 0),
            capture: Vec::new(),
            capturing: false,
        }
    }
}

impl Operator for KinectTOp {
    fn name(&self) -> &str {
        KINECT_T
    }

    fn output_schema(&self) -> SchemaRef {
        self.out_schema.clone()
    }

    fn process(&mut self, tuple: &Tuple, emit: &mut Emit<'_>) {
        let Self {
            out_schema,
            out_slots,
            in_slots,
            transformer,
            scratch,
            capture,
            capturing,
        } = self;
        let cached = matches!(&*in_slots, Some((schema, _)) if Arc::ptr_eq(schema, tuple.schema()));
        if !cached {
            *in_slots = Some((
                tuple.schema().clone(),
                KinectSlots::resolve(tuple.schema(), ""),
            ));
        }
        let (_, slots) = in_slots.as_ref().expect("resolved");
        slots.read_frame(tuple, scratch);
        if let Some(transformed) = transformer.transform_frame(scratch) {
            emit(out_slots.tuple(&transformed, out_schema));
            if *capturing {
                capture.push(transformed);
            }
        }
    }

    fn begin_block_capture(&mut self, on: bool) {
        self.capturing = on;
        self.capture.clear();
    }

    fn fill_block(
        &mut self,
        out: &[Tuple],
        cols: Option<&[usize]>,
        block: &mut ColumnBlock,
    ) -> bool {
        // One captured frame per emitted tuple, in order, or the capture
        // is unusable (defensive — cannot happen when the capture hint
        // bracketed the batch) and the caller rebuilds from tuples.
        if !self.capturing || self.capture.len() != out.len() {
            return false;
        }
        self.out_slots
            .write_block(&self.capture, &self.out_schema, cols, block);
        true
    }
}

/// Registers the `kinect_t` view over the raw `kinect` stream.
pub fn register_kinect_t(catalog: &Catalog, config: TransformConfig) -> Result<(), StreamError> {
    let schema = kinect_t_schema();
    let factory_schema = schema.clone();
    catalog.register_view(ViewDef {
        name: KINECT_T.into(),
        input: KINECT_STREAM.into(),
        schema,
        factory: Arc::new(move || Box::new(KinectTOp::new(config, factory_schema.clone()))),
    })
}

/// Builds a catalog with the `kinect` stream and default `kinect_t` view
/// registered — the standard setup for examples, tests and benches.
pub fn standard_catalog() -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new());
    catalog
        .register_stream(gesto_kinect::kinect_schema())
        .expect("fresh catalog");
    register_kinect_t(&catalog, TransformConfig::default()).expect("fresh catalog");
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesto_cep::Engine;
    use gesto_kinect::{frames_to_tuples, gestures, kinect_schema, Performer, Persona};

    #[test]
    fn catalog_resolves_view_chain() {
        let cat = standard_catalog();
        let (base, views) = cat.resolve(KINECT_T).unwrap();
        assert_eq!(base, KINECT_STREAM);
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].name, KINECT_T);
    }

    #[test]
    fn engine_detects_on_transformed_view_across_users() {
        let engine = Engine::new(standard_catalog());
        // A crude swipe detector over transformed coordinates.
        engine
            .deploy_text(
                r#"SELECT "swipe"
                   MATCHING kinect_t(rHand_x < 100 and abs(rHand_y - 150) < 120)
                         -> kinect_t(rHand_x > 700)
                   within 2 seconds select first consume all;"#,
            )
            .unwrap();
        let schema = kinect_schema();
        for (i, persona) in [
            Persona::reference(),
            Persona::reference().with_height(1200.0).at(700.0, 2800.0),
            Persona::reference().rotated(0.8),
        ]
        .into_iter()
        .enumerate()
        {
            let mut perf = Performer::new(persona, 0);
            let tuples = frames_to_tuples(&perf.render(&gestures::swipe_right()), &schema);
            let ds = engine.run_batch(KINECT_STREAM, &tuples).unwrap();
            assert_eq!(ds.len(), 1, "persona #{i} must be detected once");
            engine.reset_runs();
        }
    }

    #[test]
    fn view_drops_frames_without_torso() {
        let cat = standard_catalog();
        let view = cat.view(KINECT_T).unwrap();
        let mut op = (view.factory)();
        let schema = kinect_schema();
        let empty = gesto_kinect::SkeletonFrame::empty(0, 1);
        let t = gesto_kinect::frame_to_tuple(&empty, &schema);
        let out = gesto_stream::run_operator(op.as_mut(), &[t]);
        assert!(out.is_empty());
    }

    #[test]
    fn view_block_written_directly_matches_tuple_rebuild() {
        // SharedViews lets KinectTOp write the view block straight from
        // its transformed frames (`fill_block`); the result must be
        // bit-identical to rebuilding the lanes from the output tuples
        // — including dropout Nulls — both unfiltered and under a
        // column filter (the same pattern that pins
        // `KinectSlots::write_block` in gesto-kinect).
        use gesto_kinect::{kinect_schema, Joint, NoiseModel};
        use gesto_stream::SharedViews;

        let schema = kinect_schema();
        let out_schema = kinect_t_schema();
        let mut perf = Performer::new(
            Persona::reference()
                .with_noise(NoiseModel::realistic())
                .with_seed(11),
            0,
        );
        let mut frames = perf.render(&gestures::swipe_right());
        frames[2].joints[Joint::RightHand.index()] = None; // dropout
        let tuples = frames_to_tuples(&frames, &schema);

        let rhand: Vec<usize> = ["rHand_x", "rHand_y", "rHand_z"]
            .iter()
            .map(|n| out_schema.index_of(n).unwrap())
            .collect();
        for cols in [None, Some(rhand.as_slice())] {
            let cat = standard_catalog();
            let mut sv = SharedViews::new(&cat);
            sv.set_needed([KINECT_T]);
            if let Some(cols) = cols {
                sv.clear_block_columns();
                sv.add_view_block_columns(KINECT_T, cols);
            }
            sv.begin_batch(KINECT_STREAM, &tuples);
            let slot = sv.slot_of(KINECT_T).unwrap();
            let direct = sv.view_block(slot).expect("view ran");

            let mut rebuilt = gesto_stream::ColumnBlock::new();
            rebuilt.fill_from_tuples_filtered(sv.outputs(slot), cols);

            assert_eq!(direct.rows(), rebuilt.rows());
            assert!(direct.rows() > 0, "transform emitted nothing");
            for c in 0..out_schema.len() {
                match (direct.lane(c), rebuilt.lane(c)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.null(), b.null(), "col {c} null mask");
                        assert_eq!(a.other(), b.other(), "col {c} other mask");
                        for r in 0..direct.rows() {
                            if !a.null().get(r) {
                                assert!(
                                    a.values()[r].to_bits() == b.values()[r].to_bits(),
                                    "col {c} row {r}: {} != {}",
                                    a.values()[r],
                                    b.values()[r]
                                );
                            }
                        }
                    }
                    (a, b) => panic!("col {c}: lane presence diverged ({a:?} vs {b:?})"),
                }
            }
        }
    }

    #[test]
    fn slot_compiled_view_matches_frame_roundtrip_path() {
        // The slot-compiled operator must be bit-identical to the seed's
        // tuple→frame→transform→frame→tuple path.
        use gesto_kinect::{frame_to_tuple, tuple_to_frame, NoiseModel};
        let schema = kinect_schema();
        let out_schema = kinect_t_schema();
        let mut op = KinectTOp::new(TransformConfig::default(), out_schema.clone());
        let mut reference = crate::Transformer::new(TransformConfig::default());
        let mut perf = Performer::new(
            Persona::reference()
                .with_noise(NoiseModel::realistic())
                .with_seed(3),
            0,
        );
        for frame in perf.render(&gestures::swipe_right()) {
            let t = frame_to_tuple(&frame, &schema);
            let got = gesto_stream::run_operator(&mut op, std::slice::from_ref(&t));
            let expect = reference
                .transform_frame(&tuple_to_frame(&t, ""))
                .map(|f| frame_to_tuple(&f, &out_schema));
            match expect {
                None => assert!(got.is_empty()),
                Some(e) => {
                    assert_eq!(got.len(), 1);
                    assert_eq!(got[0].values(), e.values(), "bit-identical values");
                }
            }
        }
    }
}

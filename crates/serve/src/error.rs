//! Serving-runtime errors.

use std::fmt;

use gesto_cep::CepError;
use gesto_learn::LearnError;

/// Errors of the serving runtime.
#[derive(Debug)]
pub enum ServeError {
    /// Query parsing/compilation/deployment failed.
    Cep(CepError),
    /// Learning a gesture from samples failed.
    Learn(LearnError),
    /// A shard refused the batch: its ingest queue is full (under
    /// [`crate::BackpressurePolicy::Reject`]), or admitting the batch
    /// would exceed the shard's memory budget
    /// ([`crate::ServerConfig::shard_memory_budget`] — enforced under
    /// **every** backpressure policy; refusing beats an OOM kill).
    QueueFull {
        /// Shard whose queue rejected the batch.
        shard: usize,
    },
    /// The server is shut down (worker threads are gone).
    Shutdown,
    /// The durable control plane failed: the journal could not be
    /// appended, a checkpoint could not be written, or recovery found
    /// state it cannot restore.
    Durability(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Cep(e) => write!(f, "query error: {e}"),
            ServeError::Learn(e) => write!(f, "learning failed: {e}"),
            ServeError::QueueFull { shard } => {
                write!(f, "shard {shard} ingest queue is full")
            }
            ServeError::Shutdown => write!(f, "server is shut down"),
            ServeError::Durability(m) => write!(f, "durability error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Cep(e) => Some(e),
            ServeError::Learn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CepError> for ServeError {
    fn from(e: CepError) -> Self {
        ServeError::Cep(e)
    }
}

impl From<LearnError> for ServeError {
    fn from(e: LearnError) -> Self {
        ServeError::Learn(e)
    }
}

//! End-to-end tests of the TCP edge: real sockets, a real client
//! *process*, multiple sessions, and protocol-level backpressure.
//!
//! The flagship test starts a [`NetServer`], spawns this very test
//! binary as a child process acting as the network client (the
//! `child_client_process` "test" below is its entry point, inert
//! unless the env var is set), and asserts the detections streamed
//! back over TCP are **byte-for-byte identical** to what the same
//! frames produce through the in-process `push_batch` path.

use std::process::Command;
use std::sync::{Arc, Mutex};

use gesto_kinect::{gestures, Performer, Persona, SkeletonFrame};
use gesto_serve::net::{wire, NetClient, NetClientConfig, NetConfig, NetServer};
use gesto_serve::{BackpressurePolicy, Server, ServerConfig, SessionId};

const CHILD_ADDR_VAR: &str = "GESTO_NET_E2E_ADDR";
/// (client session id, performer seed) pairs both processes agree on.
const SESSIONS: [(u64, u64); 2] = [(11, 100), (22, 101)];
/// Batch size both the wire path and the reference path use, odd on
/// purpose to exercise validity-bitmap tail bytes.
const CHUNK: usize = 33;

fn swipe_frames(seed: u64) -> Vec<SkeletonFrame> {
    let mut p = Performer::new(Persona::reference().with_seed(seed), 0);
    p.render(&gestures::swipe_right())
}

fn teach_swipe(server: &Server) {
    let samples: Vec<_> = (0..3).map(swipe_frames).collect();
    server.teach("swipe_right", &samples).unwrap();
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

/// Canonical encoding of a detection, used on both sides of the
/// bit-identical comparison.
fn detection_bytes(d: wire::WireDetection) -> Vec<u8> {
    let mut buf = Vec::new();
    wire::encode(&wire::Message::Detection(d), &mut buf);
    buf
}

/// Child-process entry point: a no-op under the normal test run; the
/// real client when spawned by `two_sessions_from_real_client_process`.
#[test]
fn child_client_process() {
    let Ok(addr) = std::env::var(CHILD_ADDR_VAR) else {
        return;
    };
    let mut client = NetClient::connect(addr).unwrap();
    for (sid, _) in SESSIONS {
        client.open_session(sid).unwrap();
    }
    for (sid, seed) in SESSIONS {
        let frames = swipe_frames(seed);
        for chunk in frames.chunks(CHUNK) {
            client.send_batch(sid, chunk).unwrap();
        }
    }
    client.ping().unwrap();
    for d in client.bye().unwrap() {
        println!("DET {}", hex(&detection_bytes(d)));
    }
}

#[test]
fn two_sessions_from_real_client_process_bit_identical() {
    let server = Server::start(ServerConfig::new().with_shards(2));
    teach_swipe(&server);
    let net = NetServer::start(server.handle(), NetConfig::new()).unwrap();

    // The network side: this test binary re-run as a separate client
    // process, speaking the wire protocol over real TCP.
    let out = Command::new(std::env::current_exe().unwrap())
        .args(["child_client_process", "--exact", "--nocapture"])
        .env(CHILD_ADDR_VAR, net.local_addr().to_string())
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "client process failed:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    // The marker may share a line with libtest's unterminated
    // "test child_client_process ... " progress prefix, so search
    // within the line rather than anchoring at its start.
    let mut got: Vec<Vec<u8>> = String::from_utf8(out.stdout)
        .unwrap()
        .lines()
        .filter_map(|l| l.find("DET ").map(|i| &l[i + 4..]))
        .map(unhex)
        .collect();
    assert!(!got.is_empty(), "client saw no detections");

    // The reference side: identical teach, identical frames, identical
    // batching — but through the in-process push_batch path.
    let reference = Server::start(ServerConfig::new().with_shards(2));
    teach_swipe(&reference);
    let seen: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = seen.clone();
    reference.on_detection(Arc::new(move |sid, det| {
        sink.lock()
            .unwrap()
            .push(detection_bytes(wire::WireDetection {
                session: sid.0,
                ts: det.ts,
                started_at: det.started_at,
                gesture: det.gesture.clone(),
                events: det.events.iter().map(|t| t.values().to_vec()).collect(),
            }));
    }));
    for (sid, seed) in SESSIONS {
        for chunk in swipe_frames(seed).chunks(CHUNK) {
            reference
                .push_batch(SessionId(sid), chunk.to_vec())
                .unwrap();
        }
    }
    reference.drain().unwrap();
    let mut expected = seen.lock().unwrap().clone();

    got.sort();
    expected.sort();
    assert_eq!(
        got, expected,
        "wire detections must be bit-identical to in-process push_batch"
    );

    // The edge observed both sessions and measured e2e latency.
    let m = net.metrics();
    assert_eq!(m.sessions_opened(), 2);
    assert_eq!(m.detections_sent() as usize, got.len());
    assert!(m.latency().count() > 0, "latency histogram was fed");
    assert!(m.frames_received() > 0 && m.bytes_in() > 0 && m.bytes_out() > 0);

    net.shutdown();
    reference.shutdown();
    server.shutdown();
}

#[test]
fn credit_backpressure_stalls_producer_when_shard_is_full() {
    // A deliberately slow consumer: one shard, a one-batch queue, the
    // blocking policy. The edge must translate the full queue into
    // protocol backpressure (parked batches, withheld credit) rather
    // than stalling its event loop or dropping frames.
    let server = Server::start(
        ServerConfig::new()
            .with_shards(1)
            .with_queue_capacity(1)
            .with_backpressure(BackpressurePolicy::Block),
    );
    teach_swipe(&server);
    let net = NetServer::start(server.handle(), NetConfig::new().with_initial_credits(64)).unwrap();

    let mut client = NetClient::connect(net.local_addr()).unwrap();
    let frames = swipe_frames(7);
    let batch: Vec<SkeletonFrame> = frames.iter().cycle().take(64).cloned().collect();
    let mut sent = 0u64;
    for _ in 0..50 {
        client.send_batch(1, &batch).unwrap();
        sent += batch.len() as u64;
    }
    assert!(
        client.credit_waits() > 0,
        "the producer never had to wait for credit — backpressure did not reach it"
    );

    // Closing the session drains it; nothing may have been lost.
    client.close_session(1).unwrap();
    assert_eq!(
        server.metrics().frames_in(),
        sent,
        "every frame accepted on the wire must reach the shard"
    );
    let _ = client.bye().unwrap();
    net.shutdown();
    server.shutdown();
}

#[test]
fn protocol_basics_ping_idempotent_close_and_concurrent_clients() {
    let server = Server::start(ServerConfig::new().with_shards(2));
    teach_swipe(&server);
    let net = NetServer::start(server.handle(), NetConfig::new()).unwrap();
    let addr = net.local_addr();

    let mut a = NetClient::connect(addr).unwrap();
    let mut b = NetClient::connect(addr).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();

    // Closing a session that was never opened acks immediately (§3).
    a.close_session(999).unwrap();

    // Both clients may use the *same* client session id: sessions are
    // scoped per connection, so their streams must not interleave.
    let frames = swipe_frames(42);
    for chunk in frames.chunks(CHUNK) {
        a.send_batch(5, chunk).unwrap();
        b.send_batch(5, chunk).unwrap();
    }
    let da = a.bye().unwrap();
    let db = b.bye().unwrap();
    assert!(!da.is_empty() && !db.is_empty());
    assert!(da.iter().chain(&db).all(|d| d.session == 5));
    // Closing never-opened session 999 must NOT have opened it.
    assert_eq!(net.metrics().sessions_opened(), 2, "5 on a, 5 on b");

    net.shutdown();
    server.shutdown();
}

#[test]
fn sharded_io_threads_serve_concurrent_clients() {
    // Two SO_REUSEPORT listener shards (clamped to one on platforms
    // without the raw-syscall backend — the test is then the plain
    // single-loop path, still valid). Four concurrent clients must all
    // be served, with edge-wide unique engine sessions: every client
    // gets exactly its own detections back.
    let server = Server::start(ServerConfig::new().with_shards(2));
    teach_swipe(&server);
    let net = NetServer::start(server.handle(), NetConfig::new().with_io_threads(2)).unwrap();
    let addr = net.local_addr();

    let workers: Vec<_> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                let frames = swipe_frames(500 + i);
                for chunk in frames.chunks(CHUNK) {
                    client.send_batch(i, chunk).unwrap();
                }
                client.bye().unwrap()
            })
        })
        .collect();
    for (i, w) in workers.into_iter().enumerate() {
        let detections = w.join().unwrap();
        assert!(!detections.is_empty(), "client {i} saw no detections");
        assert!(
            detections.iter().all(|d| d.session == i as u64),
            "client {i} received another client's detections"
        );
    }
    assert_eq!(net.metrics().sessions_opened(), 4);

    net.shutdown();
    server.shutdown();
}

#[test]
fn control_plane_over_the_wire_and_gated_by_default() {
    let server = Server::start(ServerConfig::new().with_shards(1));
    teach_swipe(&server);

    // An operator edge, explicitly opted into control (§8).
    let net = NetServer::start(server.handle(), NetConfig::new().with_allow_control(true)).unwrap();
    let mut op = NetClient::connect(net.local_addr()).unwrap();
    op.deploy_text(r#"SELECT "ceiling" MATCHING kinect(head_y > 100000.0);"#)
        .unwrap();
    assert_eq!(server.plan_version("ceiling"), Some(1));
    // Redeploying the same name over the wire bumps the version.
    op.deploy_text(r#"SELECT "ceiling" MATCHING kinect(head_y > 200000.0);"#)
        .unwrap();
    assert_eq!(server.plan_version("ceiling"), Some(2));
    op.set_config("mode", "demo").unwrap();
    assert_eq!(server.get_config("mode").as_deref(), Some("demo"));
    // Engine-side failures come back in the ControlAck, not as a
    // protocol error: the connection stays usable.
    let err = op.deploy_text("this is not a query").unwrap_err();
    assert!(err.to_string().contains("control rejected"), "{err}");
    op.undeploy("ceiling").unwrap();
    assert!(!server.deployed().contains(&"ceiling".to_owned()));
    // The data path still works on the same connection.
    for chunk in swipe_frames(9).chunks(CHUNK) {
        op.send_batch(1, chunk).unwrap();
    }
    assert!(!op.bye().unwrap().is_empty());
    net.shutdown();

    // The default edge is data-only: control frames are refused with
    // ErrorCode::ControlDisabled but the connection survives.
    let net = NetServer::start(server.handle(), NetConfig::new()).unwrap();
    let mut data = NetClient::connect(net.local_addr()).unwrap();
    let err = data.set_config("mode", "evil").unwrap_err();
    assert!(
        err.to_string().contains("control plane disabled"),
        "unexpected refusal: {err}"
    );
    assert_eq!(server.get_config("mode").as_deref(), Some("demo"));
    data.ping().unwrap();
    for chunk in swipe_frames(10).chunks(CHUNK) {
        data.send_batch(2, chunk).unwrap();
    }
    assert!(!data.bye().unwrap().is_empty());
    assert!(net.metrics().protocol_errors() > 0);

    net.shutdown();
    server.shutdown();
}

#[test]
fn client_reconnects_with_backoff_after_edge_restart() {
    let server = Server::start(ServerConfig::new().with_shards(1));
    teach_swipe(&server);
    let net = NetServer::start(server.handle(), NetConfig::new()).unwrap();
    let addr = net.local_addr();

    let mut client = NetClient::connect_with_config(
        addr,
        NetClientConfig::new()
            .with_max_retries(20)
            .with_base_backoff_ms(5)
            .with_max_backoff_ms(50),
    )
    .unwrap();
    client.open_session(3).unwrap();
    for chunk in swipe_frames(60).chunks(CHUNK) {
        client.send_batch(3, chunk).unwrap();
    }
    client.ping().unwrap();
    assert_eq!(client.reconnects(), 0);

    // Kill the edge (the engine stays up) and restart it on the same
    // port. The listener may linger briefly; retry the bind.
    net.shutdown();
    let net = (0..100)
        .find_map(|_| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            NetServer::start(
                server.handle(),
                NetConfig::new().with_addr(addr.to_string()),
            )
            .ok()
        })
        .expect("could not rebind the edge on the old address");

    // The next operation trips over the dead socket, redials within
    // the retry budget, re-opens session 3, and completes. A fresh
    // performance sent after the reconnect must still detect.
    for chunk in swipe_frames(61).chunks(CHUNK) {
        client.send_batch(3, chunk).unwrap();
    }
    assert!(
        client.reconnects() >= 1,
        "client never redialed across the restart"
    );
    assert!(
        gesto_serve::net::client_reconnects_total() >= 1,
        "process-wide reconnect counter did not move"
    );
    let detections = client.bye().unwrap();
    assert!(
        !detections.is_empty(),
        "post-reconnect performance produced no detections"
    );
    assert!(detections.iter().all(|d| d.session == 3));

    net.shutdown();
    server.shutdown();
}

#[test]
fn malformed_bytes_get_an_error_frame_then_disconnect() {
    use std::io::{Read, Write};

    let server = Server::start(ServerConfig::new().with_shards(1));
    let net = NetServer::start(server.handle(), NetConfig::new()).unwrap();

    let mut raw = std::net::TcpStream::connect(net.local_addr()).unwrap();
    let mut buf = Vec::new();
    wire::encode(
        &wire::Message::Hello {
            version: wire::VERSION,
            flags: 0,
        },
        &mut buf,
    );
    // A well-formed envelope with an unknown type byte: fatal (§1).
    buf.extend_from_slice(&1u32.to_le_bytes());
    buf.push(0x7f);
    raw.write_all(&buf).unwrap();

    let mut bytes = Vec::new();
    raw.read_to_end(&mut bytes).unwrap(); // server hangs up after the error
    let mut rest = &bytes[..];
    let mut msgs = Vec::new();
    while let Some((m, n)) = wire::decode(rest).unwrap() {
        msgs.push(m);
        rest = &rest[n..];
    }
    assert!(matches!(msgs[0], wire::Message::HelloAck { .. }));
    assert!(
        msgs.iter().any(|m| matches!(
            m,
            wire::Message::Error {
                code: wire::ErrorCode::Malformed,
                ..
            }
        )),
        "expected a Malformed error frame, got {msgs:?}"
    );
    assert!(net.metrics().protocol_errors() > 0);

    net.shutdown();
    server.shutdown();
}

//! Conformance suite tying the `gesto_serve::net::wire` codec to the
//! normative spec in `docs/PROTOCOL.md`.
//!
//! Every golden byte string below is written out **by hand from the
//! spec's byte-layout diagrams**, never produced by the codec under
//! test — if an edit to the codec changes the wire format, these tests
//! fail until the spec (and the goldens) are updated with it. Section
//! references (§N) match the spec.

use gesto_kinect::{SkeletonFrame, Vec3};
use gesto_serve::net::wire::{
    decode, encode, encode_frame_batch, ErrorCode, Message, NetWireError, WireDetection,
    FLAG_WANT_EVENTS, MAX_BATCH_FRAMES, VERSION,
};
use gesto_stream::Value;

/// Hand-builds an envelope (§1): `u32 len (LE) | u8 type | payload`,
/// where `len` counts the type byte plus the payload.
fn envelope(ty: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(1 + payload.len() as u32).to_le_bytes());
    out.push(ty);
    out.extend_from_slice(payload);
    out
}

/// Asserts both directions against a golden byte string: the codec
/// encodes `msg` to exactly `golden`, and decodes `golden` back to
/// `msg` consuming every byte.
fn assert_golden(msg: &Message, golden: &[u8]) {
    let mut encoded = Vec::new();
    encode(msg, &mut encoded);
    assert_eq!(encoded, golden, "encoding of {msg:?} diverged from spec");
    let (decoded, consumed) = decode(golden).expect("golden decodes").expect("complete");
    assert_eq!(consumed, golden.len());
    assert_eq!(&decoded, msg);
}

// ----- §2: handshake -------------------------------------------------

#[test]
fn hello_layout_matches_spec() {
    // §2: magic "GSW1", u16 version, u16 flags.
    let mut p = Vec::new();
    p.extend_from_slice(b"GSW1");
    p.extend_from_slice(&1u16.to_le_bytes());
    p.extend_from_slice(&FLAG_WANT_EVENTS.to_le_bytes());
    assert_golden(
        &Message::Hello {
            version: VERSION,
            flags: FLAG_WANT_EVENTS,
        },
        &envelope(0x01, &p),
    );
}

#[test]
fn hello_ack_layout_matches_spec() {
    // §2: u16 version, u16 flags, u32 credits.
    let mut p = Vec::new();
    p.extend_from_slice(&1u16.to_le_bytes());
    p.extend_from_slice(&0u16.to_le_bytes());
    p.extend_from_slice(&4096u32.to_le_bytes());
    assert_golden(
        &Message::HelloAck {
            version: 1,
            flags: 0,
            credits: 4096,
        },
        &envelope(0x81, &p),
    );
}

#[test]
fn bad_magic_is_rejected() {
    let mut p = Vec::new();
    p.extend_from_slice(b"BAD1");
    p.extend_from_slice(&1u16.to_le_bytes());
    p.extend_from_slice(&0u16.to_le_bytes());
    assert!(matches!(
        decode(&envelope(0x01, &p)),
        Err(NetWireError::BadMagic(_))
    ));
}

// ----- §3: session lifecycle ----------------------------------------

#[test]
fn session_messages_layout_matches_spec() {
    // §3: a single u64 session id each.
    let sid = 0x0123_4567_89ab_cdefu64;
    assert_golden(
        &Message::OpenSession { session: sid },
        &envelope(0x02, &sid.to_le_bytes()),
    );
    assert_golden(
        &Message::CloseSession { session: sid },
        &envelope(0x04, &sid.to_le_bytes()),
    );
    assert_golden(
        &Message::SessionClosed { session: sid },
        &envelope(0x86, &sid.to_le_bytes()),
    );
    // §3: Bye has an empty payload — the minimal envelope.
    assert_golden(&Message::Bye, &envelope(0x06, &[]));
}

#[test]
fn ping_pong_layout_matches_spec() {
    let token = 0xdead_beefu64;
    assert_golden(
        &Message::Ping { token },
        &envelope(0x05, &token.to_le_bytes()),
    );
    assert_golden(
        &Message::Pong { token },
        &envelope(0x85, &token.to_le_bytes()),
    );
}

// ----- §4: frame batches and credit ---------------------------------

/// The §4 worked example: 3 frames, head (joint 0) tracked in frames
/// 0 and 2, left elbow (joint 3) tracked in frame 1 only.
fn example_batch_frames() -> Vec<SkeletonFrame> {
    let mut f0 = SkeletonFrame::empty(1000, 1);
    f0.joints[0] = Some(Vec3::new(1.5, -2.25, 3.0));
    let mut f1 = SkeletonFrame::empty(1033, 1);
    f1.joints[3] = Some(Vec3::new(0.125, 4.5, -0.5));
    let mut f2 = SkeletonFrame::empty(1066, 1);
    f2.joints[0] = Some(Vec3::new(-1.0, 2.0, 0.0));
    vec![f0, f1, f2]
}

#[test]
fn frame_batch_layout_matches_spec() {
    // §4 layout: u64 session | u16 count | count × u64 ts |
    // count × u64 player | u16 joint mask | per set mask bit:
    // ceil(count/8)-byte LSB-first validity bitmap, then 3 × u64
    // f64-bit coordinates per *valid* row, row order.
    let mut p = Vec::new();
    p.extend_from_slice(&42u64.to_le_bytes());
    p.extend_from_slice(&3u16.to_le_bytes());
    for ts in [1000u64, 1033, 1066] {
        p.extend_from_slice(&ts.to_le_bytes());
    }
    for player in [1u64, 1, 1] {
        p.extend_from_slice(&player.to_le_bytes());
    }
    // Joints 0 and 3 appear somewhere in the batch: mask 0b1001.
    p.extend_from_slice(&0b1001u16.to_le_bytes());
    // Joint 0: valid in rows 0 and 2 → bitmap 0b101.
    p.push(0b101);
    for c in [1.5f64, -2.25, 3.0, -1.0, 2.0, 0.0] {
        p.extend_from_slice(&c.to_bits().to_le_bytes());
    }
    // Joint 3: valid in row 1 only → bitmap 0b010.
    p.push(0b010);
    for c in [0.125f64, 4.5, -0.5] {
        p.extend_from_slice(&c.to_bits().to_le_bytes());
    }
    let golden = envelope(0x03, &p);

    let frames = example_batch_frames();
    let mut encoded = Vec::new();
    encode_frame_batch(42, &frames, &mut encoded);
    assert_eq!(encoded, golden, "batch encoding diverged from §4 layout");

    let (decoded, consumed) = decode(&golden).unwrap().unwrap();
    assert_eq!(consumed, golden.len());
    assert_eq!(
        decoded,
        Message::FrameBatch {
            session: 42,
            frames
        }
    );
}

#[test]
fn frame_coordinates_survive_bit_exactly() {
    // §4: coordinates travel as raw IEEE-754 bits, so even the oddest
    // representable values round-trip unchanged.
    let mut f = SkeletonFrame::empty(7, 2);
    f.joints[14] = Some(Vec3::new(f64::MIN_POSITIVE, -0.0, f64::MAX));
    let mut buf = Vec::new();
    encode_frame_batch(9, std::slice::from_ref(&f), &mut buf);
    let (msg, _) = decode(&buf).unwrap().unwrap();
    let Message::FrameBatch { frames, .. } = msg else {
        panic!("wrong message");
    };
    let got = frames[0].joints[14].unwrap();
    assert_eq!(got.x.to_bits(), f64::MIN_POSITIVE.to_bits());
    assert_eq!(got.y.to_bits(), (-0.0f64).to_bits());
    assert!(got.y.is_sign_negative(), "negative zero preserved");
    assert_eq!(got.z.to_bits(), f64::MAX.to_bits());
}

#[test]
fn credit_layout_matches_spec() {
    // §4: u32 frame grant.
    assert_golden(
        &Message::Credit { frames: 1024 },
        &envelope(0x82, &1024u32.to_le_bytes()),
    );
}

#[test]
fn oversized_batch_is_rejected() {
    // §4: counts above MAX_BATCH_FRAMES are a protocol error even
    // before the lanes are examined.
    let mut p = Vec::new();
    p.extend_from_slice(&1u64.to_le_bytes());
    p.extend_from_slice(&(MAX_BATCH_FRAMES + 1).to_le_bytes());
    assert!(matches!(
        decode(&envelope(0x03, &p)),
        Err(NetWireError::BatchTooLarge(n)) if n == MAX_BATCH_FRAMES + 1
    ));
}

#[test]
fn unknown_joint_mask_bits_are_rejected() {
    // §4: bits 15.. of the joint mask are reserved.
    let mut p = Vec::new();
    p.extend_from_slice(&1u64.to_le_bytes());
    p.extend_from_slice(&1u16.to_le_bytes());
    p.extend_from_slice(&0u64.to_le_bytes()); // ts lane
    p.extend_from_slice(&0u64.to_le_bytes()); // player lane
    p.extend_from_slice(&0x8000u16.to_le_bytes()); // reserved bit 15
    assert!(matches!(
        decode(&envelope(0x03, &p)),
        Err(NetWireError::Malformed(_))
    ));
}

// ----- §5/§6: detections and scalar values ---------------------------

#[test]
fn detection_layout_matches_spec() {
    // §5: u64 session | i64 ts | i64 started_at | u16-prefixed gesture
    // name | u16 row count | rows of (u16 value count, §6 tagged
    // values).
    let mut p = Vec::new();
    p.extend_from_slice(&5u64.to_le_bytes());
    p.extend_from_slice(&2000i64.to_le_bytes());
    p.extend_from_slice(&1500i64.to_le_bytes());
    p.extend_from_slice(&5u16.to_le_bytes());
    p.extend_from_slice(b"swipe");
    p.extend_from_slice(&1u16.to_le_bytes()); // one event row
    p.extend_from_slice(&3u16.to_le_bytes()); // of three values
    p.push(0x01); // §6: Int tag
    p.extend_from_slice(&(-7i64).to_le_bytes());
    p.push(0x02); // §6: Float tag, IEEE-754 bits
    p.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
    p.push(0x00); // §6: Null tag
    assert_golden(
        &Message::Detection(WireDetection {
            session: 5,
            ts: 2000,
            started_at: 1500,
            gesture: "swipe".to_owned(),
            events: vec![vec![Value::Int(-7), Value::Float(1.5), Value::Null]],
        }),
        &envelope(0x83, &p),
    );
}

// ----- §8: control plane ---------------------------------------------

#[test]
fn control_messages_layout_matches_spec() {
    // §8: Deploy carries a u16-prefixed UTF-8 query text.
    let text = r#"SELECT "hi" MATCHING kinect(x > 1);"#;
    let mut p = Vec::new();
    p.extend_from_slice(&(text.len() as u16).to_le_bytes());
    p.extend_from_slice(text.as_bytes());
    assert_golden(
        &Message::Deploy {
            text: text.to_owned(),
        },
        &envelope(0x07, &p),
    );
    // §8: Undeploy carries a u16-prefixed gesture name.
    let mut p = Vec::new();
    p.extend_from_slice(&2u16.to_le_bytes());
    p.extend_from_slice(b"hi");
    assert_golden(
        &Message::Undeploy {
            name: "hi".to_owned(),
        },
        &envelope(0x08, &p),
    );
    // §8: SetConfig carries two u16-prefixed strings, key then value.
    let mut p = Vec::new();
    p.extend_from_slice(&4u16.to_le_bytes());
    p.extend_from_slice(b"mode");
    p.extend_from_slice(&4u16.to_le_bytes());
    p.extend_from_slice(b"demo");
    assert_golden(
        &Message::SetConfig {
            key: "mode".to_owned(),
            value: "demo".to_owned(),
        },
        &envelope(0x09, &p),
    );
}

#[test]
fn control_ack_layout_matches_spec() {
    // §8: u8 ok flag (1 = success), u16-prefixed detail (empty on
    // success).
    let mut p = vec![1u8];
    p.extend_from_slice(&0u16.to_le_bytes());
    assert_golden(&Message::ControlAck { error: None }, &envelope(0x87, &p));

    let mut p = vec![0u8];
    p.extend_from_slice(&9u16.to_le_bytes());
    p.extend_from_slice(b"bad query");
    assert_golden(
        &Message::ControlAck {
            error: Some("bad query".to_owned()),
        },
        &envelope(0x87, &p),
    );
    // Flag bytes other than 0 and 1 are reserved.
    let mut p = vec![2u8];
    p.extend_from_slice(&0u16.to_le_bytes());
    assert!(matches!(
        decode(&envelope(0x87, &p)),
        Err(NetWireError::Malformed(_))
    ));
}

// ----- §7: errors ----------------------------------------------------

#[test]
fn error_layout_and_codes_match_spec() {
    // §7: u16 code, u16-prefixed UTF-8 detail.
    let mut p = Vec::new();
    p.extend_from_slice(&4u16.to_le_bytes());
    p.extend_from_slice(&4u16.to_le_bytes());
    p.extend_from_slice(b"full");
    assert_golden(
        &Message::Error {
            code: ErrorCode::QueueFull,
            detail: "full".to_owned(),
        },
        &envelope(0x84, &p),
    );
    // §7 code table.
    assert_eq!(ErrorCode::Malformed.code(), 1);
    assert_eq!(ErrorCode::UnsupportedVersion.code(), 2);
    assert_eq!(ErrorCode::CreditExceeded.code(), 3);
    assert_eq!(ErrorCode::QueueFull.code(), 4);
    assert_eq!(ErrorCode::Shutdown.code(), 5);
    assert_eq!(ErrorCode::ControlDisabled.code(), 6);
    for c in [1u16, 2, 3, 4, 5, 6, 999] {
        assert_eq!(ErrorCode::from_code(c).code(), c, "codes round-trip");
    }
}

// ----- §1: envelope discipline ---------------------------------------

#[test]
fn every_truncation_is_incomplete_not_an_error() {
    // §1: a prefix of a valid message must never be mistaken for a
    // malformed one — the receiver waits for more bytes.
    let mut full = Vec::new();
    encode_frame_batch(3, &example_batch_frames(), &mut full);
    for cut in 0..full.len() {
        assert!(
            matches!(decode(&full[..cut]), Ok(None)),
            "prefix of {cut} bytes must be incomplete"
        );
    }
}

#[test]
fn pipelined_messages_decode_in_sequence() {
    // §1: messages are simply concatenated; each decode consumes
    // exactly one.
    let mut buf = Vec::new();
    encode(&Message::Ping { token: 1 }, &mut buf);
    encode_frame_batch(2, &example_batch_frames(), &mut buf);
    encode(&Message::Bye, &mut buf);
    let mut rest = &buf[..];
    let mut seen = Vec::new();
    while let Some((msg, n)) = decode(rest).unwrap() {
        seen.push(msg);
        rest = &rest[n..];
    }
    assert!(rest.is_empty());
    assert_eq!(seen.len(), 3);
    assert!(matches!(seen[0], Message::Ping { token: 1 }));
    assert!(matches!(seen[1], Message::FrameBatch { session: 2, .. }));
    assert!(matches!(seen[2], Message::Bye));
}

#[test]
fn envelope_rejects_hostile_lengths_and_types() {
    // §1: length 0 is invalid (the type byte is part of the count)…
    assert!(matches!(
        decode(&0u32.to_le_bytes()),
        Err(NetWireError::BadLength(0))
    ));
    // …as is anything beyond MAX_MESSAGE_LEN — the receiver must not
    // buffer unbounded bytes on a peer's say-so.
    assert!(matches!(
        decode(&u32::MAX.to_le_bytes()),
        Err(NetWireError::BadLength(_))
    ));
    // Unknown type bytes are fatal: framing cannot be trusted after.
    assert!(matches!(
        decode(&envelope(0x7f, &[])),
        Err(NetWireError::BadType(0x7f))
    ));
    // Trailing bytes inside a body are a spec violation, not padding.
    let mut p = 1u64.to_le_bytes().to_vec();
    p.push(0xff);
    assert!(matches!(
        decode(&envelope(0x05, &p)),
        Err(NetWireError::Malformed(_))
    ));
}

//! Lexer for the gesture query dialect.

use crate::error::CepError;

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// Token kinds of the query language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Bare identifier or keyword (`kinect`, `select`, `and`, ...).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Double-quoted string literal (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=` (also accepts `==`)
    Eq,
    /// `!=` (also accepts `<>`)
    Ne,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Number(n) => format!("number {n}"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::LParen => "'('".into(),
            TokenKind::RParen => "')'".into(),
            TokenKind::Comma => "','".into(),
            TokenKind::Semicolon => "';'".into(),
            TokenKind::Arrow => "'->'".into(),
            TokenKind::Plus => "'+'".into(),
            TokenKind::Minus => "'-'".into(),
            TokenKind::Star => "'*'".into(),
            TokenKind::Slash => "'/'".into(),
            TokenKind::Lt => "'<'".into(),
            TokenKind::Le => "'<='".into(),
            TokenKind::Gt => "'>'".into(),
            TokenKind::Ge => "'>='".into(),
            TokenKind::Eq => "'='".into(),
            TokenKind::Ne => "'!='".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenises query text. Comments run from `--` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, CepError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                tokens.push(Token {
                    kind: TokenKind::Arrow,
                    offset: i,
                });
                i += 2;
            }
            b'-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: i,
                });
                i += 1;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            b';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    offset: i,
                });
                i += 1;
            }
            b'+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: i,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: i,
                });
                i += 1;
            }
            b'/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: i,
                });
                i += 1;
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: i,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Eq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Eq,
                        offset: i,
                    });
                    i += 1;
                }
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token {
                        kind: TokenKind::Ne,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(CepError::Parse {
                        offset: i,
                        message: "unexpected '!' (did you mean '!=' ?)".into(),
                    });
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(CepError::Parse {
                            offset: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            s.push(bytes[i + 1] as char);
                            i += 2;
                        }
                        b => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                let mut seen_dot = false;
                let mut seen_exp = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !seen_dot && !seen_exp => {
                            seen_dot = true;
                            i += 1;
                        }
                        b'e' | b'E' if !seen_exp && i > start => {
                            seen_exp = true;
                            i += 1;
                            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &src[start..i];
                let n: f64 = text.parse().map_err(|_| CepError::Parse {
                    offset: start,
                    message: format!("invalid number '{text}'"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    offset: start,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..i].to_owned()),
                    offset: start,
                });
            }
            other => {
                return Err(CepError::Parse {
                    offset: i,
                    message: format!("unexpected character '{}'", other as char),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_paper_fragment() {
        let ks = kinds("kinect( abs(rHand_x - torso_x - 0) < 50 ) -> ;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("kinect".into()),
                TokenKind::LParen,
                TokenKind::Ident("abs".into()),
                TokenKind::LParen,
                TokenKind::Ident("rHand_x".into()),
                TokenKind::Minus,
                TokenKind::Ident("torso_x".into()),
                TokenKind::Minus,
                TokenKind::Number(0.0),
                TokenKind::RParen,
                TokenKind::Lt,
                TokenKind::Number(50.0),
                TokenKind::RParen,
                TokenKind::Arrow,
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn arrow_vs_minus_vs_comment() {
        assert_eq!(
            kinds("a -> b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("a - b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Minus,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("a -- comment\nb"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 .5 1e3 2.5e-2"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.5),
                TokenKind::Number(0.5),
                TokenKind::Number(1000.0),
                TokenKind::Number(0.025),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds(r#""swipe_right" "a\"b""#),
            vec![
                TokenKind::Str("swipe_right".into()),
                TokenKind::Str("a\"b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let err = lex("\"oops").unwrap_err();
        assert!(matches!(err, CepError::Parse { offset: 0, .. }));
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = == != <>"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn bad_character_reports_offset() {
        let err = lex("abc $").unwrap_err();
        match err {
            CepError::Parse { offset, .. } => assert_eq!(offset, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_bang_errors() {
        assert!(lex("!x").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 3);
    }
}

//! Expression compilation and evaluation.
//!
//! Expressions are compiled once against a schema (column names →
//! indices, function names → callables) and then evaluated per tuple with
//! no name lookups on the hot path. Logic is three-valued: comparisons and
//! predicates over `Null` yield `Null`, and a pattern step only fires when
//! its predicate evaluates to *true* (unknown ≠ true).
//!
//! After structural compilation an optimiser pass fuses the hot shapes —
//! window bands `abs(x ± c) < w`, plain comparisons `x op c`, `dist()`
//! over float columns, and `and`/`or` chains — into flat variants that
//! evaluate as a handful of slot reads, with the original tree kept as a
//! bit-equivalent fallback for non-`Float` inputs.

use std::sync::Arc;

use gesto_stream::{SchemaRef, Tuple, Value};

use crate::error::CepError;
use crate::expr::ast::{BinOp, Expr, UnaryOp};
use crate::expr::functions::{FunctionRegistry, ScalarFn};

/// An expression compiled against a fixed schema.
pub enum CompiledExpr {
    /// Column by index.
    Column(usize),
    /// Constant.
    Literal(Value),
    /// Unary application.
    Unary(UnaryOp, Box<CompiledExpr>),
    /// Binary application.
    Binary(BinOp, Box<CompiledExpr>, Box<CompiledExpr>),
    /// Bound function call.
    Call(Arc<str>, ScalarFn, Vec<CompiledExpr>),
    /// Fused window check `abs(input ± center) < width` — the shape of
    /// every learned pose predicate. Evaluated as a few slot reads and
    /// float ops when the inputs are `Float`s; `Null` propagates, and
    /// any other value delegates to the bit-equivalent `fallback` tree
    /// (the unfused original).
    Band {
        /// The quantity being windowed.
        input: FusedInput,
        /// True when the centre offset is added (`+ |c|` for negative
        /// centres, matching the paper's print style).
        add: bool,
        /// Centre offset literal.
        center: f64,
        /// Window half-width literal.
        width: f64,
        /// The original tree, for exact semantics on non-`Float` input.
        fallback: Box<CompiledExpr>,
    },
    /// Fused plain comparison `input op rhs` (e.g. `rHand_y > 100`,
    /// `rHand_x - torso_x < -50`, `dist(...) < 80`). Same contract as
    /// [`Self::Band`]: float fast path, `Null` propagates, anything else
    /// delegates to the bit-equivalent `fallback` tree.
    Cmp {
        /// The compared quantity.
        input: FusedInput,
        /// The comparison operator (a comparison, never logical).
        op: BinOp,
        /// Right-hand literal.
        rhs: f64,
        /// The original tree, for exact semantics on non-`Float` input.
        fallback: Box<CompiledExpr>,
    },
    /// Flattened left-to-right Kleene conjunction (`a and b and …`):
    /// false short-circuits, `Null` is sticky-unknown.
    AndAll(Vec<CompiledExpr>),
    /// Flattened left-to-right Kleene disjunction (`a or b or …`):
    /// true short-circuits, `Null` is sticky-unknown.
    OrAll(Vec<CompiledExpr>),
}

/// The fused float quantity of a [`CompiledExpr::Band`] or
/// [`CompiledExpr::Cmp`].
pub enum FusedInput {
    /// A single column.
    Col(usize),
    /// Difference of two columns (raw torso-relative style).
    Diff(usize, usize),
    /// Built-in `dist(x1,y1,z1, x2,y2,z2)` over six columns of the joint
    /// block (Euclidean distance between two 3-D points).
    Dist([usize; 6]),
}

/// Outcome of reading a [`FusedInput`] from a tuple.
enum FusedVal {
    /// All involved slots were `Float`s.
    Float(f64),
    /// `Null` propagates (exactly where the original tree would yield
    /// `Null`).
    Null,
    /// Some slot held another value kind: delegate to the fallback tree.
    Other,
}

impl FusedInput {
    /// Appends the column indices this fused quantity reads (the float
    /// lanes a block kernel will touch).
    pub(crate) fn push_columns(&self, out: &mut Vec<usize>) {
        match self {
            FusedInput::Col(i) => out.push(*i),
            FusedInput::Diff(a, b) => out.extend([*a, *b]),
            FusedInput::Dist(cols) => out.extend(cols.iter().copied()),
        }
    }

    /// Reads the fused quantity from a tuple's value slots, mirroring
    /// the original tree's `Null` ordering exactly (see the per-variant
    /// comments); any non-`Float`, non-`Null` value defers to the
    /// caller's fallback, which replays the exact tree semantics.
    #[inline]
    fn read(&self, vals: &[Value]) -> FusedVal {
        match self {
            FusedInput::Col(i) => match &vals[*i] {
                Value::Float(x) => FusedVal::Float(*x),
                Value::Null => FusedVal::Null,
                _ => FusedVal::Other,
            },
            // Binary arithmetic checks Null on either side before the
            // numeric check, so (Str, Null) is Null, not an error.
            FusedInput::Diff(a, b) => match (&vals[*a], &vals[*b]) {
                (Value::Float(x), Value::Float(y)) => FusedVal::Float(x - y),
                (Value::Null, _) | (_, Value::Null) => FusedVal::Null,
                _ => FusedVal::Other,
            },
            // `numeric_fn` scans arguments left to right: the first Null
            // yields Null, but only if everything before it was numeric
            // (a preceding non-Float defers to the fallback, which then
            // errors or coerces exactly like the tree).
            FusedInput::Dist(cols) => {
                let mut a = [0.0f64; 6];
                for (slot, c) in a.iter_mut().zip(cols) {
                    match &vals[*c] {
                        Value::Float(x) => *slot = *x,
                        Value::Null => return FusedVal::Null,
                        _ => return FusedVal::Other,
                    }
                }
                let dx = a[0] - a[3];
                let dy = a[1] - a[4];
                let dz = a[2] - a[5];
                FusedVal::Float((dx * dx + dy * dy + dz * dz).sqrt())
            }
        }
    }
}

impl std::fmt::Debug for FusedInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusedInput::Col(i) => write!(f, "col{i}"),
            FusedInput::Diff(a, b) => write!(f, "col{a} - col{b}"),
            FusedInput::Dist(c) => write!(
                f,
                "dist(col{},col{},col{},col{},col{},col{})",
                c[0], c[1], c[2], c[3], c[4], c[5]
            ),
        }
    }
}

impl std::fmt::Debug for CompiledExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompiledExpr::Column(i) => write!(f, "Column({i})"),
            CompiledExpr::Literal(v) => write!(f, "Literal({v})"),
            CompiledExpr::Unary(op, e) => write!(f, "Unary({op:?}, {e:?})"),
            CompiledExpr::Binary(op, l, r) => write!(f, "Binary({op:?}, {l:?}, {r:?})"),
            CompiledExpr::Call(name, _, args) => write!(f, "Call({name}, {args:?})"),
            CompiledExpr::Band {
                input,
                add,
                center,
                width,
                ..
            } => {
                let sign = if *add { '+' } else { '-' };
                write!(f, "Band(abs({input:?} {sign} {center}) < {width})")
            }
            CompiledExpr::Cmp { input, op, rhs, .. } => {
                write!(f, "Cmp({input:?} {op:?} {rhs})")
            }
            CompiledExpr::AndAll(terms) => write!(f, "AndAll({terms:?})"),
            CompiledExpr::OrAll(terms) => write!(f, "OrAll({terms:?})"),
        }
    }
}

/// Compiles `expr` against `schema`, resolving functions in `funcs`,
/// then fuses the hot shapes (window bands, plain comparisons, `dist`
/// distances, conjunction/disjunction chains) so the per-tuple
/// evaluation of learned gesture predicates is a handful of slot reads
/// instead of a tree walk.
pub fn compile(
    expr: &Expr,
    schema: &SchemaRef,
    funcs: &FunctionRegistry,
) -> Result<CompiledExpr, CepError> {
    Ok(optimize(compile_tree(expr, schema, funcs)?))
}

/// The plain structural compilation (no fusion).
fn compile_tree(
    expr: &Expr,
    schema: &SchemaRef,
    funcs: &FunctionRegistry,
) -> Result<CompiledExpr, CepError> {
    match expr {
        Expr::Column(name) => {
            let idx = schema.index_of(name).ok_or_else(|| {
                CepError::Compile(format!(
                    "unknown column '{name}' in stream '{}'",
                    schema.name
                ))
            })?;
            Ok(CompiledExpr::Column(idx))
        }
        Expr::Literal(v) => Ok(CompiledExpr::Literal(v.clone())),
        Expr::Unary { op, expr } => Ok(CompiledExpr::Unary(
            *op,
            Box::new(compile_tree(expr, schema, funcs)?),
        )),
        Expr::Binary { op, lhs, rhs } => Ok(CompiledExpr::Binary(
            *op,
            Box::new(compile_tree(lhs, schema, funcs)?),
            Box::new(compile_tree(rhs, schema, funcs)?),
        )),
        Expr::Call { func, args } => {
            let f = funcs.resolve(func, args.len())?;
            let compiled = args
                .iter()
                .map(|a| compile_tree(a, schema, funcs))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(CompiledExpr::Call(Arc::from(func.as_str()), f, compiled))
        }
    }
}

/// Rewrites a compiled tree into its fused form. Pure strength
/// reduction: every rewrite preserves evaluation order, three-valued
/// logic, and error behaviour exactly (fused nodes keep the original
/// tree as their fallback for non-`Float` values).
fn optimize(expr: CompiledExpr) -> CompiledExpr {
    match expr {
        CompiledExpr::Binary(BinOp::And, l, r) => {
            let mut terms = Vec::new();
            flatten_and(*l, &mut terms);
            flatten_and(*r, &mut terms);
            CompiledExpr::AndAll(terms)
        }
        CompiledExpr::Binary(BinOp::Or, l, r) => {
            let mut terms = Vec::new();
            flatten_or(*l, &mut terms);
            flatten_or(*r, &mut terms);
            CompiledExpr::OrAll(terms)
        }
        CompiledExpr::Binary(op, l, r) if op.is_comparison() => fuse_comparison(op, *l, *r),
        CompiledExpr::Binary(op, l, r) => {
            CompiledExpr::Binary(op, Box::new(optimize(*l)), Box::new(optimize(*r)))
        }
        CompiledExpr::Unary(op, e) => CompiledExpr::Unary(op, Box::new(optimize(*e))),
        CompiledExpr::Call(name, f, args) => {
            CompiledExpr::Call(name, f, args.into_iter().map(optimize).collect())
        }
        leaf => leaf,
    }
}

/// Flattens a (left-associative) `and` chain into conjunction terms.
fn flatten_and(expr: CompiledExpr, out: &mut Vec<CompiledExpr>) {
    match expr {
        CompiledExpr::Binary(BinOp::And, l, r) => {
            flatten_and(*l, out);
            flatten_and(*r, out);
        }
        other => out.push(optimize(other)),
    }
}

/// Flattens a (left-associative) `or` chain into disjunction terms.
fn flatten_or(expr: CompiledExpr, out: &mut Vec<CompiledExpr>) {
    match expr {
        CompiledExpr::Binary(BinOp::Or, l, r) => {
            flatten_or(*l, out);
            flatten_or(*r, out);
        }
        other => out.push(optimize(other)),
    }
}

/// True when the compiled call really is the process-wide built-in `f`
/// (a user-overridden registration yields a different `Arc` and is never
/// fused).
fn is_builtin(f: &ScalarFn, builtin: &'static ScalarFn) -> bool {
    Arc::ptr_eq(f, builtin)
}

/// Fuses a slot-readable float quantity: a column, a column difference,
/// or a built-in `dist` over six columns.
fn fuse_input(e: &CompiledExpr) -> Option<FusedInput> {
    match e {
        CompiledExpr::Column(i) => Some(FusedInput::Col(*i)),
        CompiledExpr::Binary(BinOp::Sub, a, b) => match (&**a, &**b) {
            (CompiledExpr::Column(a), CompiledExpr::Column(b)) => Some(FusedInput::Diff(*a, *b)),
            _ => None,
        },
        CompiledExpr::Call(_, f, args)
            if is_builtin(f, crate::expr::functions::builtin_dist()) && args.len() == 6 =>
        {
            let mut cols = [0usize; 6];
            for (slot, a) in cols.iter_mut().zip(args) {
                match a {
                    CompiledExpr::Column(i) => *slot = *i,
                    _ => return None,
                }
            }
            Some(FusedInput::Dist(cols))
        }
        _ => None,
    }
}

/// Fuses a comparison: the band shape `abs(input ± c) < w` (for `<`),
/// else the plain shape `input op float-literal`; anything else
/// recompiles as a plain `Binary`.
fn fuse_comparison(op: BinOp, lhs: CompiledExpr, rhs: CompiledExpr) -> CompiledExpr {
    let plain = |op: BinOp, l: CompiledExpr, r: CompiledExpr| {
        CompiledExpr::Binary(op, Box::new(optimize(l)), Box::new(optimize(r)))
    };
    let rhs_lit = match &rhs {
        CompiledExpr::Literal(Value::Float(w)) => Some(*w),
        _ => None,
    };
    let Some(rhs_lit) = rhs_lit else {
        return plain(op, lhs, rhs);
    };

    // Band: `abs(input ± c) < w` with the *built-in* abs.
    if op == BinOp::Lt {
        if let CompiledExpr::Call(_, f, args) = &lhs {
            if is_builtin(f, crate::expr::functions::builtin_abs()) && args.len() == 1 {
                if let CompiledExpr::Binary(inner_op @ (BinOp::Sub | BinOp::Add), inner, c) =
                    &args[0]
                {
                    if let (Some(input), CompiledExpr::Literal(Value::Float(center))) =
                        (fuse_input(inner), &**c)
                    {
                        let (add, center) = (*inner_op == BinOp::Add, *center);
                        return CompiledExpr::Band {
                            input,
                            add,
                            center,
                            width: rhs_lit,
                            fallback: Box::new(CompiledExpr::Binary(
                                op,
                                Box::new(lhs),
                                Box::new(rhs),
                            )),
                        };
                    }
                }
            }
        }
    }

    // Plain comparison: `input op c`.
    match fuse_input(&lhs) {
        Some(input) => CompiledExpr::Cmp {
            input,
            op,
            rhs: rhs_lit,
            fallback: Box::new(CompiledExpr::Binary(op, Box::new(lhs), Box::new(rhs))),
        },
        None => plain(op, lhs, rhs),
    }
}

impl CompiledExpr {
    /// Appends the column indices the *block kernels* would read for
    /// this expression — exactly the fused inputs of `Band`/`Cmp` nodes
    /// (recursively through `AndAll`/`OrAll`). Lanes outside this set
    /// are never touched by [`Self::eval_block`], so a block that only
    /// materialises these columns serves the kernels fully.
    pub fn collect_block_columns(&self, out: &mut Vec<usize>) {
        match self {
            CompiledExpr::Band { input, .. } | CompiledExpr::Cmp { input, .. } => {
                input.push_columns(out)
            }
            CompiledExpr::AndAll(terms) | CompiledExpr::OrAll(terms) => {
                for t in terms {
                    t.collect_block_columns(out);
                }
            }
            _ => {}
        }
    }

    /// Evaluates against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value, CepError> {
        match self {
            CompiledExpr::Column(i) => Ok(tuple.values()[*i].clone()),
            CompiledExpr::Literal(v) => Ok(v.clone()),
            CompiledExpr::Unary(op, e) => {
                let v = e.eval(tuple)?;
                eval_unary(*op, v)
            }
            CompiledExpr::Binary(op, l, r) => {
                // Short-circuit logical operators (Kleene logic).
                if op.is_logical() {
                    return eval_logical(*op, l, r, tuple);
                }
                let a = l.eval(tuple)?;
                let b = r.eval(tuple)?;
                eval_binary(*op, a, b)
            }
            CompiledExpr::Call(_name, f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(tuple)?);
                }
                f(&vals)
            }
            CompiledExpr::Band {
                input,
                add,
                center,
                width,
                fallback,
            } => {
                let x = match input.read(tuple.values()) {
                    FusedVal::Float(x) => x,
                    FusedVal::Null => return Ok(Value::Null),
                    FusedVal::Other => return fallback.eval(tuple),
                };
                let r = if *add { x + center } else { x - center }.abs();
                // Same comparison kernel as the tree (incl. the NaN
                // error path).
                eval_comparison(BinOp::Lt, Value::Float(r), Value::Float(*width))
            }
            CompiledExpr::Cmp {
                input,
                op,
                rhs,
                fallback,
            } => match input.read(tuple.values()) {
                FusedVal::Float(x) => eval_comparison(*op, Value::Float(x), Value::Float(*rhs)),
                FusedVal::Null => Ok(Value::Null),
                FusedVal::Other => fallback.eval(tuple),
            },
            CompiledExpr::AndAll(terms) => {
                let mut saw_null = false;
                for t in terms {
                    match t.eval(tuple)? {
                        Value::Bool(false) => return Ok(Value::Bool(false)),
                        Value::Bool(true) => {}
                        Value::Null => saw_null = true,
                        other => {
                            return Err(CepError::Eval(format!(
                                "non-boolean operand {other} for And"
                            )))
                        }
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(true)
                })
            }
            CompiledExpr::OrAll(terms) => {
                let mut saw_null = false;
                for t in terms {
                    match t.eval(tuple)? {
                        Value::Bool(true) => return Ok(Value::Bool(true)),
                        Value::Bool(false) => {}
                        Value::Null => saw_null = true,
                        other => {
                            return Err(CepError::Eval(format!(
                                "non-boolean operand {other} for Or"
                            )))
                        }
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                })
            }
        }
    }

    /// Evaluates as a predicate: `true` only when the result is boolean
    /// true; `Null`/unknown is `false`.
    pub fn eval_bool(&self, tuple: &Tuple) -> Result<bool, CepError> {
        Ok(matches!(self.eval(tuple)?, Value::Bool(true)))
    }
}

fn eval_unary(op: UnaryOp, v: Value) -> Result<Value, CepError> {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(CepError::Eval(format!("cannot negate {other}"))),
        },
        UnaryOp::Not => match v {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(CepError::Eval(format!("cannot apply 'not' to {other}"))),
        },
    }
}

fn eval_logical(
    op: BinOp,
    l: &CompiledExpr,
    r: &CompiledExpr,
    tuple: &Tuple,
) -> Result<Value, CepError> {
    let a = l.eval(tuple)?;
    let a_bool = match &a {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        other => {
            return Err(CepError::Eval(format!(
                "non-boolean operand {other} for {op:?}"
            )))
        }
    };
    // Kleene short circuit: false and X = false; true or X = true.
    match (op, a_bool) {
        (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
        (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let b = r.eval(tuple)?;
    let b_bool = match &b {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        other => {
            return Err(CepError::Eval(format!(
                "non-boolean operand {other} for {op:?}"
            )))
        }
    };
    let out = match op {
        BinOp::And => match (a_bool, b_bool) {
            (Some(true), Some(true)) => Some(true),
            (Some(false), _) | (_, Some(false)) => Some(false),
            _ => None,
        },
        BinOp::Or => match (a_bool, b_bool) {
            (Some(false), Some(false)) => Some(false),
            (Some(true), _) | (_, Some(true)) => Some(true),
            _ => None,
        },
        _ => unreachable!("eval_logical called with non-logical op"),
    };
    Ok(out.map(Value::Bool).unwrap_or(Value::Null))
}

fn eval_binary(op: BinOp, a: Value, b: Value) -> Result<Value, CepError> {
    if op.is_comparison() {
        return eval_comparison(op, a, b);
    }
    // Arithmetic. Null propagates.
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match (&a, &b) {
        (Value::Int(x), Value::Int(y)) => {
            let v = match op {
                BinOp::Add => Value::Int(x + y),
                BinOp::Sub => Value::Int(x - y),
                BinOp::Mul => Value::Int(x * y),
                BinOp::Div => {
                    if *y == 0 {
                        return Err(CepError::Eval("integer division by zero".into()));
                    }
                    Value::Float(*x as f64 / *y as f64)
                }
                _ => unreachable!(),
            };
            Ok(v)
        }
        _ => {
            let x = a
                .as_f64()
                .ok_or_else(|| CepError::Eval(format!("non-numeric operand {a}")))?;
            let y = b
                .as_f64()
                .ok_or_else(|| CepError::Eval(format!("non-numeric operand {b}")))?;
            let v = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
    }
}

fn eval_comparison(op: BinOp, a: Value, b: Value) -> Result<Value, CepError> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    use std::cmp::Ordering;
    let ord = a.partial_cmp_value(&b);
    let out = match op {
        BinOp::Eq => a.eq_value(&b),
        BinOp::Ne => a.eq_value(&b).map(|e| !e),
        BinOp::Lt => ord.map(|o| o == Ordering::Less),
        BinOp::Le => ord.map(|o| o != Ordering::Greater),
        BinOp::Gt => ord.map(|o| o == Ordering::Greater),
        BinOp::Ge => ord.map(|o| o != Ordering::Less),
        _ => unreachable!(),
    };
    match out {
        Some(b) => Ok(Value::Bool(b)),
        None => Err(CepError::Eval(format!("incomparable values {a} and {b}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesto_stream::SchemaBuilder;

    fn schema() -> SchemaRef {
        SchemaBuilder::new("k")
            .timestamp("ts")
            .float("x")
            .float("y")
            .bool("flag")
            .str("tag")
            .build()
            .unwrap()
    }

    fn tuple(x: f64, y: f64) -> Tuple {
        Tuple::new(
            schema(),
            vec![
                Value::Timestamp(0),
                Value::Float(x),
                Value::Float(y),
                Value::Bool(true),
                Value::Str("t".into()),
            ],
        )
        .unwrap()
    }

    fn eval(e: &Expr, t: &Tuple) -> Value {
        let reg = FunctionRegistry::with_builtins();
        compile(e, t.schema(), &reg).unwrap().eval(t).unwrap()
    }

    #[test]
    fn paper_range_predicate() {
        // abs(x - y - 0) < 50
        let e = Expr::lt(
            Expr::abs(Expr::bin(
                BinOp::Sub,
                Expr::bin(BinOp::Sub, Expr::col("x"), Expr::col("y")),
                Expr::lit(0.0),
            )),
            Expr::lit(50.0),
        );
        assert_eq!(eval(&e, &tuple(100.0, 60.0)), Value::Bool(true));
        assert_eq!(eval(&e, &tuple(100.0, 20.0)), Value::Bool(false));
    }

    #[test]
    fn arithmetic_int_and_float() {
        let t = tuple(10.0, 4.0);
        let add = Expr::bin(BinOp::Add, Expr::lit(2i64), Expr::lit(3i64));
        assert_eq!(eval(&add, &t), Value::Int(5));
        let div = Expr::bin(BinOp::Div, Expr::lit(7i64), Expr::lit(2i64));
        assert_eq!(eval(&div, &t), Value::Float(3.5));
        let mixed = Expr::bin(BinOp::Mul, Expr::col("x"), Expr::lit(2i64));
        assert_eq!(eval(&mixed, &t), Value::Float(20.0));
    }

    #[test]
    fn division_by_zero_errors() {
        let reg = FunctionRegistry::with_builtins();
        let t = tuple(1.0, 1.0);
        let e = Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64));
        let c = compile(&e, t.schema(), &reg).unwrap();
        assert!(matches!(c.eval(&t), Err(CepError::Eval(_))));
        // Float division by zero is IEEE infinity, not an error.
        let e = Expr::bin(BinOp::Div, Expr::lit(1.0), Expr::lit(0.0));
        let c = compile(&e, t.schema(), &reg).unwrap();
        assert_eq!(c.eval(&t).unwrap(), Value::Float(f64::INFINITY));
    }

    #[test]
    fn null_propagates_to_unknown_predicate() {
        let s = schema();
        let t = Tuple::new(
            s,
            vec![
                Value::Timestamp(0),
                Value::Null,
                Value::Float(1.0),
                Value::Bool(true),
                Value::Null,
            ],
        )
        .unwrap();
        let e = Expr::lt(Expr::col("x"), Expr::lit(50.0));
        let reg = FunctionRegistry::with_builtins();
        let c = compile(&e, t.schema(), &reg).unwrap();
        assert_eq!(c.eval(&t).unwrap(), Value::Null);
        assert!(!c.eval_bool(&t).unwrap(), "unknown is not a match");
    }

    #[test]
    fn kleene_short_circuit() {
        let t = tuple(1.0, 1.0);
        // false and (1/0) must not evaluate the rhs
        let e = Expr::and(
            Expr::lit(false),
            Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64)),
        );
        let reg = FunctionRegistry::with_builtins();
        let c = compile(&e, t.schema(), &reg).unwrap();
        assert_eq!(c.eval(&t).unwrap(), Value::Bool(false));

        // true or error-rhs = true
        let e = Expr::bin(
            BinOp::Or,
            Expr::lit(true),
            Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64)),
        );
        let c = compile(&e, t.schema(), &reg).unwrap();
        assert_eq!(c.eval(&t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_and_false_is_false() {
        let s = schema();
        let t = Tuple::new(
            s,
            vec![
                Value::Timestamp(0),
                Value::Null,
                Value::Float(1.0),
                Value::Bool(true),
                Value::Null,
            ],
        )
        .unwrap();
        let reg = FunctionRegistry::with_builtins();
        // (x < 1) and false  => false even though lhs is unknown
        let e = Expr::and(Expr::lt(Expr::col("x"), Expr::lit(1.0)), Expr::lit(false));
        let c = compile(&e, t.schema(), &reg).unwrap();
        assert_eq!(c.eval(&t).unwrap(), Value::Bool(false));
        // (x < 1) or true => true
        let e = Expr::bin(
            BinOp::Or,
            Expr::lt(Expr::col("x"), Expr::lit(1.0)),
            Expr::lit(true),
        );
        let c = compile(&e, t.schema(), &reg).unwrap();
        assert_eq!(c.eval(&t).unwrap(), Value::Bool(true));
    }

    fn band_expr(center: f64, width: f64) -> Expr {
        Expr::lt(
            Expr::abs(Expr::bin(BinOp::Sub, Expr::col("x"), Expr::lit(center))),
            Expr::lit(width),
        )
    }

    #[test]
    fn learned_shape_fuses_into_band() {
        let reg = FunctionRegistry::with_builtins();
        let e = Expr::and(band_expr(400.0, 50.0), band_expr(150.0, 40.0));
        let c = compile(&e, &schema(), &reg).unwrap();
        let dbg = format!("{c:?}");
        assert!(dbg.starts_with("AndAll"), "{dbg}");
        assert_eq!(dbg.matches("Band(").count(), 2, "{dbg}");
        // Negative centre prints as `+ |c|` and still fuses.
        let neg = Expr::lt(
            Expr::abs(Expr::bin(BinOp::Add, Expr::col("x"), Expr::lit(120.0))),
            Expr::lit(50.0),
        );
        let c = compile(&neg, &schema(), &reg).unwrap();
        assert!(format!("{c:?}").contains("Band"), "{c:?}");
        let t = tuple(-100.0, 0.0);
        assert_eq!(c.eval(&t).unwrap(), Value::Bool(true), "abs(-100+120)<50");
    }

    #[test]
    fn band_matches_tree_on_every_value_kind() {
        // Int-in-float-slot, Null, and plain Float must all agree with
        // the unfused tree bit for bit.
        let reg = FunctionRegistry::with_builtins();
        let s = schema();
        let e = band_expr(10.0, 5.0);
        let fused = compile(&e, &s, &reg).unwrap();
        assert!(format!("{fused:?}").contains("Band"));
        let tree = compile_tree(&e, &s, &reg).unwrap();
        for x in [
            Value::Float(12.0),
            Value::Float(100.0),
            Value::Float(f64::NAN),
            Value::Int(11),
            Value::Null,
        ] {
            let t = Tuple::new(
                s.clone(),
                vec![
                    Value::Timestamp(0),
                    x.clone(),
                    Value::Float(0.0),
                    Value::Bool(true),
                    Value::Null,
                ],
            )
            .unwrap();
            match (fused.eval(&t), tree.eval(&t)) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "value {x}"),
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "value {x}"),
                (a, b) => panic!("divergence on {x}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn plain_comparisons_fuse_into_cmp() {
        let reg = FunctionRegistry::with_builtins();
        for (e, expect) in [
            (Expr::lt(Expr::col("x"), Expr::lit(5.0)), true),
            (Expr::bin(BinOp::Ge, Expr::col("x"), Expr::lit(5.0)), false),
            (
                // diff shape: x - y > -10
                Expr::bin(
                    BinOp::Gt,
                    Expr::bin(BinOp::Sub, Expr::col("x"), Expr::col("y")),
                    Expr::lit(-10.0),
                ),
                true,
            ),
        ] {
            let c = compile(&e, &schema(), &reg).unwrap();
            assert!(format!("{c:?}").starts_with("Cmp"), "{c:?}");
            assert_eq!(c.eval(&tuple(1.0, 2.0)).unwrap(), Value::Bool(expect));
        }
        // Non-float literal: not fused.
        let c = compile(
            &Expr::bin(BinOp::Eq, Expr::col("tag"), Expr::lit("t")),
            &schema(),
            &reg,
        )
        .unwrap();
        assert!(!format!("{c:?}").starts_with("Cmp"), "{c:?}");
    }

    #[test]
    fn cmp_matches_tree_on_every_value_kind() {
        let reg = FunctionRegistry::with_builtins();
        let s = schema();
        for op in [
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Eq,
            BinOp::Ne,
        ] {
            let e = Expr::bin(op, Expr::col("x"), Expr::lit(10.0));
            let fused = compile(&e, &s, &reg).unwrap();
            assert!(format!("{fused:?}").starts_with("Cmp"), "{fused:?}");
            let tree = compile_tree(&e, &s, &reg).unwrap();
            for x in [
                Value::Float(9.0),
                Value::Float(10.0),
                Value::Float(11.0),
                Value::Float(f64::NAN),
                Value::Int(10),
                Value::Null,
            ] {
                let t = Tuple::new(
                    s.clone(),
                    vec![
                        Value::Timestamp(0),
                        x.clone(),
                        Value::Float(0.0),
                        Value::Bool(true),
                        Value::Null,
                    ],
                )
                .unwrap();
                match (fused.eval(&t), tree.eval(&t)) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "{op:?} on {x}"),
                    (Err(a), Err(b)) => {
                        assert_eq!(a.to_string(), b.to_string(), "{op:?} on {x}")
                    }
                    (a, b) => panic!("divergence for {op:?} on {x}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    fn dist_schema() -> SchemaRef {
        SchemaBuilder::new("k")
            .timestamp("ts")
            .float("ax")
            .float("ay")
            .float("az")
            .float("bx")
            .float("by")
            .float("bz")
            .build()
            .unwrap()
    }

    fn dist_expr() -> Expr {
        Expr::Call {
            func: "dist".into(),
            args: ["ax", "ay", "az", "bx", "by", "bz"]
                .iter()
                .map(|c| Expr::col(*c))
                .collect(),
        }
    }

    #[test]
    fn dist_over_columns_fuses() {
        let reg = FunctionRegistry::with_builtins();
        let e = Expr::lt(dist_expr(), Expr::lit(6.0));
        let c = compile(&e, &dist_schema(), &reg).unwrap();
        assert!(format!("{c:?}").starts_with("Cmp(dist("), "{c:?}");
        let t = Tuple::new(
            dist_schema(),
            vec![
                Value::Timestamp(0),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Float(3.0),
                Value::Float(4.0),
                Value::Float(0.0),
            ],
        )
        .unwrap();
        assert_eq!(c.eval(&t).unwrap(), Value::Bool(true), "5 < 6");

        // Null joint propagates to unknown, exactly like the tree.
        let tree = compile_tree(&e, &dist_schema(), &reg).unwrap();
        let t = Tuple::new(
            dist_schema(),
            vec![
                Value::Timestamp(0),
                Value::Float(0.0),
                Value::Null,
                Value::Float(0.0),
                Value::Float(3.0),
                Value::Float(4.0),
                Value::Float(0.0),
            ],
        )
        .unwrap();
        assert_eq!(c.eval(&t).unwrap(), Value::Null);
        assert_eq!(tree.eval(&t).unwrap(), Value::Null);
    }

    #[test]
    fn overridden_dist_is_not_fused() {
        let reg = FunctionRegistry::with_builtins();
        reg.register(
            "dist",
            crate::expr::functions::Arity::Exact(6),
            Arc::new(|_| Ok(Value::Float(0.0))),
        );
        let e = Expr::lt(dist_expr(), Expr::lit(6.0));
        let c = compile(&e, &dist_schema(), &reg).unwrap();
        assert!(!format!("{c:?}").contains("dist(col"), "{c:?}");
    }

    #[test]
    fn or_chain_flattens_and_short_circuits() {
        let reg = FunctionRegistry::with_builtins();
        let e = Expr::bin(
            BinOp::Or,
            Expr::bin(
                BinOp::Or,
                Expr::lt(Expr::col("x"), Expr::lit(0.0)),
                Expr::lt(Expr::col("y"), Expr::lit(0.0)),
            ),
            Expr::lit(true),
        );
        let c = compile(&e, &schema(), &reg).unwrap();
        let dbg = format!("{c:?}");
        assert!(dbg.starts_with("OrAll"), "{dbg}");
        assert_eq!(dbg.matches("Cmp").count(), 2, "terms fused too: {dbg}");
        assert_eq!(c.eval(&tuple(5.0, 5.0)).unwrap(), Value::Bool(true));

        // true short-circuits past an erroring tail.
        let e = Expr::bin(
            BinOp::Or,
            Expr::lit(true),
            Expr::bin(BinOp::Div, Expr::lit(1i64), Expr::lit(0i64)),
        );
        let c = compile(&e, &schema(), &reg).unwrap();
        assert!(format!("{c:?}").starts_with("OrAll"));
        assert_eq!(c.eval(&tuple(0.0, 0.0)).unwrap(), Value::Bool(true));

        // Null is sticky-unknown: null or false = null, null or true = true.
        let s = schema();
        let null_t = Tuple::new(
            s.clone(),
            vec![
                Value::Timestamp(0),
                Value::Null,
                Value::Float(1.0),
                Value::Bool(true),
                Value::Null,
            ],
        )
        .unwrap();
        let e = Expr::bin(
            BinOp::Or,
            Expr::lt(Expr::col("x"), Expr::lit(1.0)),
            Expr::lit(false),
        );
        let c = compile(&e, &s, &reg).unwrap();
        assert_eq!(c.eval(&null_t).unwrap(), Value::Null);
        let e = Expr::bin(
            BinOp::Or,
            Expr::lt(Expr::col("x"), Expr::lit(1.0)),
            Expr::lit(true),
        );
        let c = compile(&e, &s, &reg).unwrap();
        assert_eq!(c.eval(&null_t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn overridden_abs_is_not_fused() {
        let reg = FunctionRegistry::with_builtins();
        // A user-redefined `abs` must keep its (weird) semantics.
        reg.register(
            "abs",
            crate::expr::functions::Arity::Exact(1),
            Arc::new(|_| Ok(Value::Float(0.0))),
        );
        let c = compile(&band_expr(400.0, 50.0), &schema(), &reg).unwrap();
        assert!(!format!("{c:?}").contains("Band"), "{c:?}");
        let t = tuple(9999.0, 0.0);
        assert_eq!(c.eval(&t).unwrap(), Value::Bool(true), "0.0 < 50");
    }

    #[test]
    fn unknown_column_fails_compile() {
        let reg = FunctionRegistry::with_builtins();
        let e = Expr::col("nope");
        assert!(matches!(
            compile(&e, &schema(), &reg),
            Err(CepError::Compile(_))
        ));
    }

    #[test]
    fn string_equality() {
        let t = tuple(0.0, 0.0);
        let e = Expr::bin(BinOp::Eq, Expr::col("tag"), Expr::lit("t"));
        assert_eq!(eval(&e, &t), Value::Bool(true));
        let e = Expr::bin(BinOp::Ne, Expr::col("tag"), Expr::lit("z"));
        assert_eq!(eval(&e, &t), Value::Bool(true));
    }

    #[test]
    fn incomparable_types_error() {
        let reg = FunctionRegistry::with_builtins();
        let t = tuple(0.0, 0.0);
        let e = Expr::lt(Expr::col("tag"), Expr::lit(1.0));
        let c = compile(&e, t.schema(), &reg).unwrap();
        assert!(matches!(c.eval(&t), Err(CepError::Eval(_))));
    }

    #[test]
    fn nested_function_calls() {
        let t = tuple(-9.0, 2.0);
        let e = Expr::Call {
            func: "sqrt".into(),
            args: vec![Expr::abs(Expr::col("x"))],
        };
        assert_eq!(eval(&e, &t), Value::Float(3.0));
    }

    #[test]
    fn negation() {
        let t = tuple(5.0, 0.0);
        let e = Expr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(Expr::col("x")),
        };
        assert_eq!(eval(&e, &t), Value::Float(-5.0));
        let e = Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(Expr::col("flag")),
        };
        assert_eq!(eval(&e, &t), Value::Bool(false));
    }
}

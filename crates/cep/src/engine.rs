//! The CEP engine: runtime deployment and execution of gesture queries.
//!
//! The engine owns a [`Catalog`] of streams/views and a set of deployed
//! queries. Tuples are pushed per base stream; for every deployed query
//! the engine runs the required view chain (e.g. `kinect` → `kinect_t`)
//! and advances the query's NFA. Queries can be deployed, undeployed and
//! replaced while the stream is live — the paper's "exchanging the
//! applications' pre-defined navigation operations during runtime" (§4).

use std::collections::HashMap;
use std::sync::Arc;

use gesto_stream::{Catalog, SharedViews, Tuple};
use parking_lot::{Mutex, RwLock};

use crate::error::CepError;
use crate::expr::FunctionRegistry;
use crate::match_op::Detection;
use crate::parser::parse_query;
use crate::pattern::Query;
use crate::plan::{PlanInstance, QueryPlan};

/// Callback invoked on every detection.
pub type DetectionListener = Arc<dyn Fn(&Detection) + Send + Sync>;

/// The deployed-query registry type.
type QueryMap = HashMap<String, Mutex<PlanInstance>>;

/// Runtime statistics of a deployed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryStats {
    /// Query (gesture) name.
    pub name: String,
    /// Total detections so far.
    pub detections: u64,
    /// Currently tracked partial matches.
    pub active_runs: usize,
    /// Partial matches shed due to the run cap.
    pub shed_runs: u64,
    /// Number of primitive steps in the pattern.
    pub steps: usize,
}

/// The CEP engine.
///
/// The engine is one logical session: it owns a [`SharedViews`] runtime,
/// so every registered view is evaluated **once per pushed tuple** and
/// its output is shared by reference across all deployed query routes
/// (the transform-once data path). Lock order is `views` → `queries`
/// everywhere.
pub struct Engine {
    catalog: Arc<Catalog>,
    funcs: Arc<FunctionRegistry>,
    views: Mutex<SharedViews>,
    queries: RwLock<HashMap<String, Mutex<PlanInstance>>>,
    listeners: RwLock<Vec<DetectionListener>>,
}

impl Engine {
    /// Creates an engine over `catalog` with the built-in functions.
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Self::with_functions(catalog, Arc::new(FunctionRegistry::with_builtins()))
    }

    /// Creates an engine with a custom function registry.
    pub fn with_functions(catalog: Arc<Catalog>, funcs: Arc<FunctionRegistry>) -> Self {
        let views = Mutex::new(SharedViews::new(&catalog));
        Self {
            catalog,
            funcs,
            views,
            queries: RwLock::new(HashMap::new()),
            listeners: RwLock::new(Vec::new()),
        }
    }

    /// Re-syncs the shared view runtime with the catalog and the set of
    /// deployed queries: instantiates views registered since the last
    /// deploy, marks exactly the views referenced by some route (plus
    /// their inputs) as needed, and declares the float columns the
    /// deployed predicates read so the per-batch columnar blocks only
    /// materialise those lanes. Called under the deploy locks.
    fn sync_views(views: &mut SharedViews, catalog: &Catalog, queries: &QueryMap) {
        views.refresh(catalog);
        let mut needed: Vec<String> = Vec::new();
        let mut plans = Vec::with_capacity(queries.len());
        for entry in queries.values() {
            let inst = entry.lock();
            for route in inst.plan().routes() {
                for v in &route.views {
                    if !needed.contains(v) {
                        needed.push(v.clone());
                    }
                }
            }
            plans.push(inst.plan().clone());
        }
        views.set_needed(needed.iter().map(String::as_str));
        crate::plan::sync_block_columns(views, plans.iter());
    }

    /// The engine's catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The engine's function registry (for registering UDFs).
    pub fn functions(&self) -> &Arc<FunctionRegistry> {
        &self.funcs
    }

    /// Adds a detection listener (invoked for every detection of every
    /// query).
    pub fn add_listener(&self, listener: DetectionListener) {
        self.listeners.write().push(listener);
    }

    /// Compiles `query` into a shareable plan against this engine's
    /// catalog and functions (without deploying it).
    pub fn compile(&self, query: Query) -> Result<Arc<QueryPlan>, CepError> {
        QueryPlan::compile(query, self.catalog.as_ref(), &self.funcs)
    }

    /// Deploys a parsed query. Fails if a query with the same name is
    /// already deployed.
    pub fn deploy(&self, query: Query) -> Result<(), CepError> {
        self.deploy_plan(self.compile(query)?)
    }

    /// Deploys an already-compiled plan (no recompilation — the cheap
    /// path when the same plan is shared across many engines). Fails if a
    /// query with the same name is already deployed.
    pub fn deploy_plan(&self, plan: Arc<QueryPlan>) -> Result<(), CepError> {
        let mut views = self.views.lock();
        let mut queries = self.queries.write();
        if queries.contains_key(plan.name()) {
            return Err(CepError::DuplicateQuery(plan.name().to_owned()));
        }
        queries.insert(plan.name().to_owned(), Mutex::new(plan.instantiate()));
        Self::sync_views(&mut views, &self.catalog, &queries);
        Ok(())
    }

    /// Parses and deploys query text.
    pub fn deploy_text(&self, text: &str) -> Result<(), CepError> {
        self.deploy(parse_query(text)?)
    }

    /// Removes a deployed query.
    pub fn undeploy(&self, name: &str) -> Result<Query, CepError> {
        let mut views = self.views.lock();
        let mut queries = self.queries.write();
        let removed = queries
            .remove(name)
            .map(|d| d.into_inner().plan().query().clone())
            .ok_or_else(|| CepError::UnknownQuery(name.to_owned()))?;
        Self::sync_views(&mut views, &self.catalog, &queries);
        Ok(removed)
    }

    /// Atomically replaces a deployed query of the same name (deploys if
    /// absent). Partial matches of the old query are discarded.
    pub fn replace(&self, query: Query) -> Result<(), CepError> {
        self.replace_plan(self.compile(query)?);
        Ok(())
    }

    /// [`Self::replace`] for an already-compiled plan.
    pub fn replace_plan(&self, plan: Arc<QueryPlan>) {
        let mut views = self.views.lock();
        let mut queries = self.queries.write();
        queries.insert(plan.name().to_owned(), Mutex::new(plan.instantiate()));
        Self::sync_views(&mut views, &self.catalog, &queries);
    }

    /// Names of deployed queries (sorted).
    pub fn deployed(&self) -> Vec<String> {
        let mut v: Vec<String> = self.queries.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of deployed queries.
    pub fn len(&self) -> usize {
        self.queries.read().len()
    }

    /// True when no queries are deployed.
    pub fn is_empty(&self) -> bool {
        self.queries.read().is_empty()
    }

    /// Statistics of one deployed query.
    pub fn stats(&self, name: &str) -> Result<QueryStats, CepError> {
        let queries = self.queries.read();
        let d = queries
            .get(name)
            .ok_or_else(|| CepError::UnknownQuery(name.to_owned()))?
            .lock();
        Ok(d.stats())
    }

    /// Statistics of every deployed query, sorted by name.
    pub fn stats_all(&self) -> Vec<QueryStats> {
        let queries = self.queries.read();
        let mut out: Vec<QueryStats> = queries.values().map(|d| d.lock().stats()).collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// The shared plans of every deployed query, sorted by name — the
    /// hand-off point for moving deployments into another runtime (e.g. a
    /// multi-session server) without recompiling.
    pub fn deployed_plans(&self) -> Vec<Arc<QueryPlan>> {
        let queries = self.queries.read();
        let mut out: Vec<Arc<QueryPlan>> =
            queries.values().map(|d| d.lock().plan().clone()).collect();
        out.sort_by(|a, b| a.name().cmp(b.name()));
        out
    }

    /// Pushes one tuple of base stream `stream` through all deployed
    /// queries; returns all detections (listeners are also invoked).
    ///
    /// Views are evaluated once for the tuple and shared across every
    /// deployed query (transform-once).
    pub fn push(&self, stream: &str, tuple: &Tuple) -> Result<Vec<Detection>, CepError> {
        self.push_batch(stream, std::slice::from_ref(tuple))
    }

    /// Pushes a batch of tuples of one stream; returns all detections.
    ///
    /// Amortises route dispatch across the batch: the view runtime, the
    /// query registry and every instance lock are acquired once for the
    /// whole batch, not once per tuple.
    pub fn push_batch(&self, stream: &str, tuples: &[Tuple]) -> Result<Vec<Detection>, CepError> {
        let mut out = Vec::new();
        self.push_batch_into(stream, tuples, &mut out)?;
        Ok(out)
    }

    /// [`Self::push_batch`] into a caller-owned buffer (the allocation-
    /// free variant for hot loops that reuse a detections scratch).
    /// Detections are appended; the buffer is not cleared. Within one
    /// batch, detections are grouped per query (each query's NFA steps
    /// the whole batch in one call) and stream-ordered within a query.
    ///
    /// Listeners fire after the batch completes, with no engine locks
    /// held — a listener may safely call back into the engine (stats,
    /// push, deploy). On error, detections already appended to `out`
    /// have been reported to listeners.
    pub fn push_batch_into(
        &self,
        stream: &str,
        tuples: &[Tuple],
        out: &mut Vec<Detection>,
    ) -> Result<(), CepError> {
        let fresh = out.len();
        let result = {
            let mut views = self.views.lock();
            let queries = self.queries.read();
            let mut instances: Vec<_> = queries.values().map(|m| m.lock()).collect();
            // Transform-once, step-batched: every needed view runs once
            // over the whole batch, then each deployed plan advances its
            // NFA batch-at-a-time over the shared outputs.
            views.begin_batch(stream, tuples);
            let mut run = || -> Result<(), CepError> {
                for inst in instances.iter_mut() {
                    inst.push_batch_shared(stream, tuples, &views, out)?;
                }
                Ok(())
            };
            run()
        };
        // All locks are released before listeners run, so listeners can
        // re-enter the engine without self-deadlocking.
        if out.len() > fresh {
            let listeners = self.listeners.read();
            for det in &out[fresh..] {
                for l in listeners.iter() {
                    l(det);
                }
            }
        }
        result
    }

    /// Pushes a batch of tuples of one stream; returns all detections.
    /// Alias of [`Self::push_batch`], kept for the seed API.
    pub fn run_batch(&self, stream: &str, tuples: &[Tuple]) -> Result<Vec<Detection>, CepError> {
        self.push_batch(stream, tuples)
    }

    /// Resets all partial matches of all queries (e.g. between test
    /// passes).
    pub fn reset_runs(&self) {
        let queries = self.queries.read();
        for entry in queries.values() {
            entry.lock().reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesto_stream::{ops::MapOp, SchemaBuilder, SchemaRef, Value, ViewDef};

    fn schema() -> SchemaRef {
        SchemaBuilder::new("kinect")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap()
    }

    fn tup(ts: i64, x: f64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(ts), Value::Float(x)]).unwrap()
    }

    fn engine_with_view() -> Engine {
        let cat = Arc::new(Catalog::new());
        cat.register_stream(schema()).unwrap();
        // kinect_t doubles x.
        let out = SchemaBuilder::new("kinect_t")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap();
        let factory_schema = out.clone();
        cat.register_view(ViewDef {
            name: "kinect_t".into(),
            input: "kinect".into(),
            schema: out,
            factory: Arc::new(move || {
                let s = factory_schema.clone();
                Box::new(MapOp::new("double", s.clone(), move |t: &Tuple| {
                    Some(Tuple::new_unchecked(
                        s.clone(),
                        vec![
                            t.get_by_name("ts").unwrap().clone(),
                            Value::Float(t.f64("x").unwrap() * 2.0),
                        ],
                    ))
                }))
            }),
        })
        .unwrap();
        Engine::new(cat)
    }

    #[test]
    fn deploy_push_detect() {
        let e = engine_with_view();
        e.deploy_text(r#"SELECT "g" MATCHING kinect(x > 9) -> kinect(x < 1) within 1 seconds;"#)
            .unwrap();
        assert_eq!(e.deployed(), vec!["g"]);
        assert!(e.push("kinect", &tup(0, 10.0)).unwrap().is_empty());
        let ds = e.push("kinect", &tup(100, 0.5)).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].gesture, "g");
        assert_eq!(e.stats("g").unwrap().detections, 1);
    }

    #[test]
    fn view_chain_applied() {
        let e = engine_with_view();
        // Query over the doubled view: x>18 only true via the view (raw 10).
        e.deploy_text(r#"SELECT "v" MATCHING kinect_t(x > 18);"#)
            .unwrap();
        let ds = e.push("kinect", &tup(0, 10.0)).unwrap();
        assert_eq!(ds.len(), 1, "view transformed 10 -> 20 > 18");
        let ds = e.push("kinect", &tup(10, 8.0)).unwrap();
        assert!(ds.is_empty(), "8 -> 16 < 18");
    }

    #[test]
    fn duplicate_deploy_rejected_replace_allowed() {
        let e = engine_with_view();
        e.deploy_text(r#"SELECT "g" MATCHING kinect(x > 9);"#)
            .unwrap();
        assert!(matches!(
            e.deploy_text(r#"SELECT "g" MATCHING kinect(x > 5);"#),
            Err(CepError::DuplicateQuery(_))
        ));
        e.replace(parse_query(r#"SELECT "g" MATCHING kinect(x > 100);"#).unwrap())
            .unwrap();
        assert!(
            e.push("kinect", &tup(0, 10.0)).unwrap().is_empty(),
            "replaced threshold"
        );
    }

    #[test]
    fn undeploy_stops_detection() {
        let e = engine_with_view();
        e.deploy_text(r#"SELECT "g" MATCHING kinect(x > 9);"#)
            .unwrap();
        assert_eq!(e.push("kinect", &tup(0, 10.0)).unwrap().len(), 1);
        let q = e.undeploy("g").unwrap();
        assert_eq!(q.name, "g");
        assert!(e.push("kinect", &tup(1, 10.0)).unwrap().is_empty());
        assert!(matches!(e.undeploy("g"), Err(CepError::UnknownQuery(_))));
    }

    #[test]
    fn listeners_invoked() {
        let e = engine_with_view();
        e.deploy_text(r#"SELECT "g" MATCHING kinect(x > 9);"#)
            .unwrap();
        let hits = Arc::new(parking_lot::Mutex::new(Vec::<String>::new()));
        let h2 = hits.clone();
        e.add_listener(Arc::new(move |d: &Detection| {
            h2.lock().push(d.gesture.clone())
        }));
        e.push("kinect", &tup(0, 10.0)).unwrap();
        assert_eq!(hits.lock().as_slice(), &["g".to_string()]);
    }

    #[test]
    fn listener_may_reenter_the_engine() {
        // Listeners run with no engine locks held: a monitoring sink
        // that calls back into the engine must not self-deadlock.
        let e = Arc::new(engine_with_view());
        e.deploy_text(r#"SELECT "g" MATCHING kinect(x > 9);"#)
            .unwrap();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
        let e2 = Arc::downgrade(&e);
        let s2 = seen.clone();
        e.add_listener(Arc::new(move |d: &Detection| {
            let engine = e2.upgrade().expect("engine alive");
            s2.lock().push(engine.stats(&d.gesture).unwrap().detections);
        }));
        e.push("kinect", &tup(0, 10.0)).unwrap();
        assert_eq!(seen.lock().as_slice(), &[1]);
    }

    #[test]
    fn multiple_queries_detect_independently() {
        let e = engine_with_view();
        e.deploy_text(r#"SELECT "hi" MATCHING kinect(x > 9);"#)
            .unwrap();
        e.deploy_text(r#"SELECT "lo" MATCHING kinect(x < 1);"#)
            .unwrap();
        let ds = e
            .run_batch("kinect", &[tup(0, 10.0), tup(10, 0.0)])
            .unwrap();
        let mut names: Vec<_> = ds.iter().map(|d| d.gesture.as_str()).collect();
        names.sort();
        assert_eq!(names, vec!["hi", "lo"]);
    }

    #[test]
    fn view_evaluated_once_per_tuple_across_queries() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let cat = Arc::new(Catalog::new());
        cat.register_stream(schema()).unwrap();
        let out = SchemaBuilder::new("kinect_t")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap();
        let calls = Arc::new(AtomicU64::new(0));
        let factory_schema = out.clone();
        let factory_calls = calls.clone();
        cat.register_view(ViewDef {
            name: "kinect_t".into(),
            input: "kinect".into(),
            schema: out,
            factory: Arc::new(move || {
                let s = factory_schema.clone();
                let calls = factory_calls.clone();
                Box::new(MapOp::new("double", s.clone(), move |t: &Tuple| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    Some(Tuple::new_unchecked(
                        s.clone(),
                        vec![
                            t.get_by_name("ts").unwrap().clone(),
                            Value::Float(t.f64("x").unwrap() * 2.0),
                        ],
                    ))
                }))
            }),
        })
        .unwrap();
        let e = Engine::new(cat);
        // Three queries over the same view: the transform must still run
        // exactly once per pushed tuple.
        e.deploy_text(r#"SELECT "a" MATCHING kinect_t(x > 18);"#)
            .unwrap();
        e.deploy_text(r#"SELECT "b" MATCHING kinect_t(x > 10);"#)
            .unwrap();
        e.deploy_text(r#"SELECT "c" MATCHING kinect_t(x < 0);"#)
            .unwrap();
        let ds = e.push("kinect", &tup(0, 10.0)).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1, "transform-once");
        let mut names: Vec<_> = ds.iter().map(|d| d.gesture.as_str()).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        e.push("kinect", &tup(10, -1.0)).unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn push_batch_matches_per_tuple_push() {
        let a = engine_with_view();
        let b = engine_with_view();
        for e in [&a, &b] {
            e.deploy_text(r#"SELECT "g" MATCHING kinect(x > 9) -> kinect(x < 1);"#)
                .unwrap();
            e.deploy_text(r#"SELECT "v" MATCHING kinect_t(x > 18);"#)
                .unwrap();
        }
        let tuples: Vec<Tuple> = [(0, 10.0), (50, 0.5), (100, 9.5), (150, 0.2)]
            .iter()
            .map(|&(ts, x)| tup(ts, x))
            .collect();
        let batched = a.push_batch("kinect", &tuples).unwrap();
        let mut single = Vec::new();
        for t in &tuples {
            single.extend(b.push("kinect", t).unwrap());
        }
        let key = |d: &Detection| (d.gesture.clone(), d.ts, d.started_at);
        let mut bk: Vec<_> = batched.iter().map(key).collect();
        let mut sk: Vec<_> = single.iter().map(key).collect();
        bk.sort();
        sk.sort();
        assert_eq!(bk, sk);
        assert!(!bk.is_empty());
    }

    #[test]
    fn unknown_source_fails_deploy() {
        let e = engine_with_view();
        let err = e
            .deploy_text(r#"SELECT "g" MATCHING nosuch(x > 1);"#)
            .unwrap_err();
        assert!(matches!(err, CepError::Stream(_)), "{err}");
    }

    #[test]
    fn reset_runs_clears_state() {
        let e = engine_with_view();
        e.deploy_text(r#"SELECT "g" MATCHING kinect(x > 9) -> kinect(x < 1);"#)
            .unwrap();
        e.push("kinect", &tup(0, 10.0)).unwrap();
        assert_eq!(e.stats("g").unwrap().active_runs, 1);
        e.reset_runs();
        assert_eq!(e.stats("g").unwrap().active_runs, 0);
    }
}

//! Offline shim for the `rand_chacha` crate: a genuine ChaCha8 keystream
//! generator aiming for stream compatibility with crates.io
//! `rand_chacha` 0.3 under `rand` 0.8 — RFC 8439 core with 8 rounds, a
//! 64-bit block counter in words 12–13, sequential block order, and the
//! rand_core 0.6 PCG32-based `seed_from_u64` key expansion.

use rand::{RngCore, SeedableRng};

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 = buffer exhausted.
    idx: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Builds the generator from a 256-bit key (as 32 bytes, word-wise
    /// little-endian), counter and stream zero.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(mut state: u64) -> Self {
        // rand_core 0.6's default seed expansion: PCG32 (XSH-RR) filling
        // the seed four bytes at a time.
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..64).map(|_| rng.next_u32()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zero_key_first_block_unkeyed_chacha() {
        // Structural check: with an all-zero seed the first block is the
        // ChaCha8 permutation of (SIGMA, 0…0) plus the input — its first
        // word therefore cannot equal the raw constant.
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        assert_ne!(rng.next_u32(), SIGMA[0]);
    }

    #[test]
    fn counter_advances_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let b: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(a, b);
    }
}

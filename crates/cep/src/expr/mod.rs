//! Expressions: AST, scalar functions, compilation and evaluation.

mod ast;
mod eval;
mod functions;

pub use ast::{BinOp, Expr, UnaryOp};
pub use eval::{compile, BandInput, CompiledExpr};
pub use functions::{Arity, FunctionRegistry, ScalarFn};

//! Stillness detection (§3.1).
//!
//! "The actual recording is triggered after the user did not move for
//! some time and lasts until the user stops at the end pose." The
//! detector watches the tracked joints over a sliding time window and
//! reports `Still` when their bounding-box diameter stays under a
//! threshold for the whole window.

use std::collections::VecDeque;

use gesto_kinect::{SkeletonFrame, ALL_JOINTS};
use serde::{Deserialize, Serialize};

/// Motion classification of the current instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MotionState {
    /// Not enough history to decide yet.
    Unknown,
    /// The user held the pose for the whole window.
    Still,
    /// The user is moving.
    Moving,
}

/// Configuration of the motion detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionConfig {
    /// Window length in stream ms the classification looks back over.
    pub window_ms: i64,
    /// Maximum bounding-box edge (mm) of any joint's positions within the
    /// window for the pose to count as still.
    pub threshold_mm: f64,
}

impl Default for MotionConfig {
    fn default() -> Self {
        Self {
            window_ms: 500,
            threshold_mm: 60.0,
        }
    }
}

/// Sliding-window stillness detector over skeleton frames.
#[derive(Debug, Clone)]
pub struct MotionDetector {
    config: MotionConfig,
    history: VecDeque<(i64, Vec<Option<gesto_kinect::Vec3>>)>,
}

impl MotionDetector {
    /// Creates a detector.
    pub fn new(config: MotionConfig) -> Self {
        Self {
            config,
            history: VecDeque::new(),
        }
    }

    /// Creates a detector with default settings.
    pub fn with_defaults() -> Self {
        Self::new(MotionConfig::default())
    }

    /// Clears history (e.g. at session boundaries).
    pub fn reset(&mut self) {
        self.history.clear();
    }

    /// Feeds one frame, returns the current state.
    pub fn push(&mut self, frame: &SkeletonFrame) -> MotionState {
        let ts = frame.ts;
        self.history.push_back((ts, frame.joints.to_vec()));
        while let Some((t0, _)) = self.history.front() {
            if ts - t0 > self.config.window_ms {
                self.history.pop_front();
            } else {
                break;
            }
        }
        self.classify()
    }

    /// Current state without feeding a new frame.
    pub fn classify(&self) -> MotionState {
        let span = match (self.history.front(), self.history.back()) {
            (Some((a, _)), Some((b, _))) => b - a,
            _ => return MotionState::Unknown,
        };
        // Need (most of) a full window of history before deciding.
        if span < (self.config.window_ms as f64 * 0.8) as i64 {
            return MotionState::Unknown;
        }
        // Per joint: bounding box of positions in the window.
        for j in ALL_JOINTS {
            let idx = j.index();
            let mut min = [f64::MAX; 3];
            let mut max = [f64::MIN; 3];
            let mut seen = false;
            for (_, joints) in &self.history {
                if let Some(p) = joints[idx] {
                    seen = true;
                    for (d, v) in [p.x, p.y, p.z].into_iter().enumerate() {
                        min[d] = min[d].min(v);
                        max[d] = max[d].max(v);
                    }
                }
            }
            if !seen {
                continue;
            }
            for d in 0..3 {
                if max[d] - min[d] > self.config.threshold_mm {
                    return MotionState::Moving;
                }
            }
        }
        MotionState::Still
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesto_kinect::{gestures, Joint, NoiseModel, Performer, Persona, Vec3};

    #[test]
    fn unknown_until_window_fills() {
        let mut d = MotionDetector::with_defaults();
        let mut f = SkeletonFrame::empty(0, 1);
        f.set_joint(Joint::Torso, Vec3::ZERO);
        assert_eq!(d.push(&f), MotionState::Unknown);
        let mut f2 = f.clone();
        f2.ts = 100;
        assert_eq!(d.push(&f2), MotionState::Unknown);
    }

    #[test]
    fn still_pose_detected() {
        let mut d = MotionDetector::with_defaults();
        let mut state = MotionState::Unknown;
        for i in 0..20 {
            let mut f = SkeletonFrame::empty(i * 33, 1);
            f.set_joint(Joint::RightHand, Vec3::new(100.0, 200.0, -100.0));
            state = d.push(&f);
        }
        assert_eq!(state, MotionState::Still);
    }

    #[test]
    fn movement_detected_and_recovers() {
        let mut d = MotionDetector::with_defaults();
        // Still phase.
        for i in 0..20 {
            let mut f = SkeletonFrame::empty(i * 33, 1);
            f.set_joint(Joint::RightHand, Vec3::new(0.0, 0.0, 0.0));
            d.push(&f);
        }
        // Sudden movement.
        let mut f = SkeletonFrame::empty(20 * 33, 1);
        f.set_joint(Joint::RightHand, Vec3::new(300.0, 0.0, 0.0));
        assert_eq!(d.push(&f), MotionState::Moving);
        // Hold the new pose: back to still after a window passes.
        let mut state = MotionState::Moving;
        for i in 21..45 {
            let mut f = SkeletonFrame::empty(i * 33, 1);
            f.set_joint(Joint::RightHand, Vec3::new(300.0, 0.0, 0.0));
            state = d.push(&f);
        }
        assert_eq!(state, MotionState::Still);
    }

    #[test]
    fn sensor_jitter_stays_still() {
        let persona = Persona::reference().with_noise(NoiseModel::realistic());
        let mut perf = Performer::new(persona, 0);
        let frames = perf.render_idle(2000);
        let mut d = MotionDetector::with_defaults();
        let mut still = 0;
        let mut moving = 0;
        for f in &frames {
            match d.push(f) {
                MotionState::Still => still += 1,
                MotionState::Moving => moving += 1,
                MotionState::Unknown => {}
            }
        }
        assert!(
            still > 30,
            "idle persona is mostly still ({still} still, {moving} moving)"
        );
        assert_eq!(moving, 0, "jitter below threshold");
    }

    #[test]
    fn swipe_is_moving() {
        let mut perf = Performer::new(Persona::reference(), 0);
        let frames = perf.render(&gestures::swipe_right());
        let mut d = MotionDetector::with_defaults();
        let states: Vec<MotionState> = frames.iter().map(|f| d.push(f)).collect();
        assert!(states.contains(&MotionState::Moving));
    }

    #[test]
    fn dropout_joints_ignored() {
        let mut d = MotionDetector::with_defaults();
        let mut state = MotionState::Unknown;
        for i in 0..20 {
            let mut f = SkeletonFrame::empty(i * 33, 1);
            // Only the torso is ever tracked; everything else missing.
            f.set_joint(Joint::Torso, Vec3::new(1.0, 2.0, 3.0));
            state = d.push(&f);
        }
        assert_eq!(state, MotionState::Still);
    }

    #[test]
    fn reset_clears_history() {
        let mut d = MotionDetector::with_defaults();
        for i in 0..20 {
            let mut f = SkeletonFrame::empty(i * 33, 1);
            f.set_joint(Joint::Torso, Vec3::ZERO);
            d.push(&f);
        }
        assert_eq!(d.classify(), MotionState::Still);
        d.reset();
        assert_eq!(d.classify(), MotionState::Unknown);
    }
}

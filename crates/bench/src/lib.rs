//! Shared harness utilities for the experiment binaries and criterion
//! benches: persona sweeps, teach/detect helpers and plain-text table
//! rendering (the experiment binaries print paper-style tables).

pub mod chaos;

use gesto_cep::Engine;
use gesto_kinect::{
    frames_to_tuples, kinect_schema, GestureSpec, NoiseModel, Performer, Persona, SkeletonFrame,
    KINECT_STREAM,
};
use gesto_learn::query_gen::{generate_query, QueryStyle};
use gesto_learn::{GestureDefinition, Learner, LearnerConfig};
use gesto_transform::{standard_catalog, TransformConfig, Transformer};

/// Renders one gesture performance for a persona (fresh performer).
pub fn perform(spec: &GestureSpec, persona: &Persona, seed: u64) -> Vec<SkeletonFrame> {
    let mut p = Performer::new(persona.clone().with_seed(seed), 0);
    p.render(spec)
}

/// Applies the standard `kinect_t` transformation to raw frames.
pub fn transform_frames(frames: &[SkeletonFrame]) -> Vec<SkeletonFrame> {
    let mut tr = Transformer::new(TransformConfig::default());
    frames
        .iter()
        .filter_map(|f| tr.transform_frame(f))
        .collect()
}

/// Learns a definition from `k` noisy samples of `spec` (seeds
/// `seed_base..seed_base+k`).
pub fn learn_gesture(
    spec: &GestureSpec,
    k: usize,
    seed_base: u64,
    config: LearnerConfig,
) -> GestureDefinition {
    let persona = Persona::reference().with_noise(NoiseModel::realistic());
    let mut learner = Learner::new(config);
    for i in 0..k as u64 {
        let frames = perform(spec, &persona, seed_base + i);
        learner
            .add_sample_frames(&transform_frames(&frames))
            .expect("simulated sample non-empty");
    }
    learner.finalize(&spec.name).expect("finalizable")
}

/// Builds an engine with the standard catalog and the given definitions
/// deployed (transformed-view style).
pub fn engine_with(defs: &[GestureDefinition]) -> Engine {
    let engine = Engine::new(standard_catalog());
    for def in defs {
        engine
            .deploy(generate_query(def, QueryStyle::TransformedView))
            .expect("deployable");
    }
    engine
}

/// Feeds one performance into `engine`; returns the detected gesture
/// names (engine runs are reset afterwards so trials are independent).
pub fn detect(engine: &Engine, frames: &[SkeletonFrame]) -> Vec<String> {
    let tuples = frames_to_tuples(frames, &kinect_schema());
    let out = engine
        .run_batch(KINECT_STREAM, &tuples)
        .expect("stream ok")
        .into_iter()
        .map(|d| d.gesture)
        .collect();
    engine.reset_runs();
    out
}

/// The persona sweep used by the invariance and accuracy experiments:
/// heights from child to tall adult, positions across the field of view,
/// rotations, tempi.
pub fn persona_sweep() -> Vec<(String, Persona)> {
    let base = Persona::reference().with_noise(NoiseModel::realistic());
    vec![
        ("reference".into(), base.clone()),
        ("child 1.15m".into(), base.clone().with_height(1150.0)),
        ("teen 1.45m".into(), base.clone().with_height(1450.0)),
        ("tall 2.00m".into(), base.clone().with_height(2000.0)),
        ("left of camera".into(), base.clone().at(-900.0, 2200.0)),
        ("far away".into(), base.clone().at(300.0, 3400.0)),
        ("rotated -35deg".into(), base.clone().rotated(-0.61)),
        ("rotated +45deg".into(), base.clone().rotated(0.79)),
        ("slow (x0.7)".into(), base.clone().with_tempo(0.7)),
        ("fast (x1.5)".into(), base.clone().with_tempo(1.5)),
        (
            "child, moved, rotated".into(),
            base.with_height(1200.0).at(700.0, 2800.0).rotated(0.5),
        ),
    ]
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                let pad = w - c.chars().count();
                line.push_str(c);
                line.push_str(&" ".repeat(pad));
                line.push_str(" | ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Flattens a metric registry into sorted `(series, value)` pairs —
/// counters/gauges verbatim, histograms as `_count`/`_sum` — for
/// embedding per-point snapshots in bench JSON reports.
pub fn registry_snapshot(reg: &gesto_telemetry::Registry) -> Vec<(String, f64)> {
    use gesto_telemetry::SampleValue;
    let mut out = Vec::new();
    for s in reg.gather() {
        let series = if s.labels.is_empty() {
            s.name.clone()
        } else {
            let labels: Vec<String> = s
                .labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{v}\""))
                .collect();
            format!("{}{{{}}}", s.name, labels.join(","))
        };
        match s.value {
            SampleValue::Counter(v) => out.push((series, v as f64)),
            SampleValue::Gauge(v) => out.push((series, v)),
            SampleValue::Histogram(h) => {
                out.push((format!("{series}_count"), h.count as f64));
                out.push((format!("{series}_sum"), h.sum as f64));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Minimal JSON string escaping for series names (quotes in labels).
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Percentage formatting helper.
pub fn pct(hits: usize, total: usize) -> String {
    if total == 0 {
        "n/a".into()
    } else {
        format!("{:.0}%", 100.0 * hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesto_kinect::gestures;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with("|--"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1, 2), "50%");
        assert_eq!(pct(0, 0), "n/a");
    }

    #[test]
    fn learn_and_detect_helper_roundtrip() {
        let def = learn_gesture(&gestures::push(), 2, 0, LearnerConfig::default());
        let engine = engine_with(std::slice::from_ref(&def));
        let frames = perform(
            &gestures::push(),
            &Persona::reference().with_noise(NoiseModel::realistic()),
            99,
        );
        let hits = detect(&engine, &frames);
        assert!(hits.contains(&"push".to_string()));
    }

    #[test]
    fn sweep_is_diverse() {
        let sweep = persona_sweep();
        assert!(sweep.len() >= 10);
        let heights: std::collections::BTreeSet<i64> =
            sweep.iter().map(|(_, p)| p.body.height as i64).collect();
        assert!(heights.len() >= 4);
    }
}

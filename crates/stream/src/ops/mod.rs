//! Built-in stream operators.

mod aggregate;
mod filter;
mod map;
mod project;
mod sample;
mod sink;
mod window;

pub use aggregate::{AggFn, SlidingAggregate, WindowMode};
pub use filter::FilterOp;
pub use map::MapOp;
pub use project::ProjectOp;
pub use sample::EveryN;
pub use sink::{CallbackSink, CollectSink};
pub use window::CountWindow;

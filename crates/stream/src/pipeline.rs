//! Operator chains: linear pipelines with deterministic in-thread
//! execution.

use crate::operator::{BoxedOperator, Emit, Operator};
use crate::schema::SchemaRef;
use crate::tuple::Tuple;

/// A linear chain of operators executed depth-first per input tuple.
///
/// The chain is itself an [`Operator`], so chains compose (a chain can be a
/// stage of another chain). Execution is fully deterministic: each input
/// tuple is pushed through all stages before the next input is consumed.
pub struct Chain {
    name: String,
    ops: Vec<BoxedOperator>,
}

impl Chain {
    /// Creates an empty (identity) chain; it needs at least one operator
    /// before `output_schema` is meaningful.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Appends an operator stage.
    pub fn then(mut self, op: impl Operator + 'static) -> Self {
        self.ops.push(Box::new(op));
        self
    }

    /// Appends a boxed operator stage.
    pub fn then_boxed(mut self, op: BoxedOperator) -> Self {
        self.ops.push(op);
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Pushes one tuple through the chain, collecting final outputs.
    pub fn push(&mut self, tuple: &Tuple) -> Vec<Tuple> {
        let mut out = Vec::new();
        {
            let mut emit = |t: Tuple| out.push(t);
            Self::run_stage(&mut self.ops, 0, tuple, &mut emit);
        }
        out
    }

    /// Pushes a batch, collecting all final outputs (then flushes).
    pub fn run(&mut self, tuples: &[Tuple]) -> Vec<Tuple> {
        let mut out = Vec::new();
        {
            let mut emit = |t: Tuple| out.push(t);
            for t in tuples {
                Self::run_stage(&mut self.ops, 0, t, &mut emit);
            }
            Self::finish_stage(&mut self.ops, 0, &mut emit);
        }
        out
    }

    fn run_stage(ops: &mut [BoxedOperator], i: usize, tuple: &Tuple, emit: &mut Emit<'_>) {
        if i >= ops.len() {
            emit(tuple.clone());
            return;
        }
        // Split so the current op and the tail can be borrowed disjointly.
        let (head, tail) = ops.split_at_mut(i + 1);
        let op = &mut head[i];
        let mut forward = |t: Tuple| {
            if tail.is_empty() {
                emit(t);
            } else {
                Self::run_stage_tail(tail, &t, emit);
            }
        };
        op.process(tuple, &mut forward);
    }

    fn run_stage_tail(ops: &mut [BoxedOperator], tuple: &Tuple, emit: &mut Emit<'_>) {
        let (head, tail) = ops.split_at_mut(1);
        let op = &mut head[0];
        let mut forward = |t: Tuple| {
            if tail.is_empty() {
                emit(t);
            } else {
                Self::run_stage_tail(tail, &t, emit);
            }
        };
        op.process(tuple, &mut forward);
    }

    fn finish_stage(ops: &mut [BoxedOperator], i: usize, emit: &mut Emit<'_>) {
        if i >= ops.len() {
            return;
        }
        let (head, tail) = ops.split_at_mut(i + 1);
        let op = &mut head[i];
        let mut forward = |t: Tuple| {
            if tail.is_empty() {
                emit(t);
            } else {
                Self::run_stage_tail(tail, &t, emit);
            }
        };
        op.finish(&mut forward);
        // Recurse on the remainder: downstream operators may also buffer.
        Self::finish_stage(ops, i + 1, emit);
    }
}

impl Operator for Chain {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SchemaRef {
        self.ops
            .last()
            .map(|op| op.output_schema())
            .expect("output_schema of an empty chain")
    }

    fn process(&mut self, tuple: &Tuple, emit: &mut Emit<'_>) {
        Self::run_stage(&mut self.ops, 0, tuple, emit);
    }

    fn finish(&mut self, emit: &mut Emit<'_>) {
        Self::finish_stage(&mut self.ops, 0, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{FilterOp, MapOp};
    use crate::schema::SchemaBuilder;
    use crate::value::Value;

    #[test]
    fn chain_composes_stages_in_order() {
        let schema = SchemaBuilder::new("s").float("x").build().unwrap();
        let s2 = schema.clone();
        let mut chain = Chain::new("c")
            .then(MapOp::new("x+1", schema.clone(), move |t| {
                Some(Tuple::new_unchecked(
                    s2.clone(),
                    vec![Value::Float(t.f64("x").unwrap() + 1.0)],
                ))
            }))
            .then(FilterOp::new("pos", schema.clone(), |t| {
                t.f64("x").unwrap() > 0.0
            }));

        let mk = |x: f64| Tuple::new(schema.clone(), vec![Value::Float(x)]).unwrap();
        let out = chain.run(&[mk(-2.0), mk(0.0), mk(5.0)]);
        let xs: Vec<_> = out.iter().map(|t| t.f64("x").unwrap()).collect();
        assert_eq!(xs, vec![1.0, 6.0]);
    }

    #[test]
    fn empty_chain_is_identity_via_push() {
        let schema = SchemaBuilder::new("s").int("a").build().unwrap();
        let mut chain = Chain::new("id");
        let t = Tuple::new(schema, vec![Value::Int(1)]).unwrap();
        let out = chain.push(&t);
        assert_eq!(out, vec![t]);
    }

    #[test]
    fn chains_nest() {
        let schema = SchemaBuilder::new("s").float("x").build().unwrap();
        let s2 = schema.clone();
        let inner = Chain::new("inner").then(MapOp::new("x*2", schema.clone(), move |t| {
            Some(Tuple::new_unchecked(
                s2.clone(),
                vec![Value::Float(t.f64("x").unwrap() * 2.0)],
            ))
        }));
        let mut outer = Chain::new("outer").then(inner);
        let t = Tuple::new(schema, vec![Value::Float(3.0)]).unwrap();
        assert_eq!(outer.push(&t)[0].f64("x"), Some(6.0));
    }

    #[test]
    fn finish_flushes_buffered_stages() {
        use crate::ops::{AggFn, SlidingAggregate, WindowMode};
        let schema = SchemaBuilder::new("s")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap();
        let agg = SlidingAggregate::new(
            "agg",
            &schema,
            &["x"],
            &[AggFn::Sum],
            10,
            WindowMode::Tumbling,
        )
        .unwrap();
        let mut chain = Chain::new("c").then(agg);
        let tuples: Vec<_> = (0..3)
            .map(|i| {
                Tuple::new(schema.clone(), vec![Value::Timestamp(i), Value::Float(1.0)]).unwrap()
            })
            .collect();
        let out = chain.run(&tuples);
        assert_eq!(out.len(), 1, "partial window flushed by run()");
        assert_eq!(out[0].f64("x_sum"), Some(3.0));
    }
}

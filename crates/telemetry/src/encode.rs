//! Prometheus text exposition format 0.0.4.
//!
//! One `# HELP` + `# TYPE` header per metric family, then one line per
//! series. Histograms expand into cumulative `_bucket{le="…"}` series
//! plus `_sum` and `_count`, with the trailing `le="+Inf"` bucket equal
//! to the count. Label values escape `\`, `"` and newline; help text
//! escapes `\` and newline. Pinned against hand-written goldens in
//! `tests/exposition_conformance.rs`.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::instruments::HistogramSnapshot;
use crate::registry::{MetricKind, Sample, SampleValue};

/// Encodes gathered samples as a Prometheus 0.0.4 text payload.
///
/// Families render sorted by name; series within a family sort by their
/// label pairs, so the output is deterministic for a given sample set.
pub fn encode_text(samples: &[Sample]) -> String {
    // Group by family name, keeping (help, kind) from the first sample
    // seen for the family.
    let mut families: BTreeMap<&str, (&str, MetricKind, Vec<&Sample>)> = BTreeMap::new();
    for s in samples {
        families
            .entry(&s.name)
            .or_insert_with(|| (&s.help, s.value.kind(), Vec::new()))
            .2
            .push(s);
    }

    let mut out = String::new();
    for (name, (help, kind, mut series)) in families {
        series.sort_by(|a, b| a.labels.cmp(&b.labels));
        let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(out, "# TYPE {name} {}", type_str(kind));
        for s in series {
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{name}{} {v}", labels(&s.labels));
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{name}{} {}", labels(&s.labels), fmt_f64(*v));
                }
                SampleValue::Histogram(h) => write_histogram(&mut out, name, &s.labels, h),
            }
        }
    }
    out
}

fn type_str(kind: MetricKind) -> &'static str {
    match kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

/// Renders one histogram snapshot as cumulative buckets + sum + count.
/// Empty buckets past the last populated one collapse into `+Inf` to
/// keep scrape payloads small; a fully empty histogram still emits the
/// `+Inf` bucket so the series parses.
fn write_histogram(
    out: &mut String,
    name: &str,
    base_labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    let last = h
        .buckets
        .iter()
        .rposition(|&c| c != 0)
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().take(last).enumerate() {
        cum += c;
        let le = (1u128 << (i + 1)).to_string();
        let _ = writeln!(
            out,
            "{name}_bucket{} {cum}",
            labels_with(base_labels, "le", &le)
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        labels_with(base_labels, "le", "+Inf"),
        h.count
    );
    let _ = writeln!(out, "{name}_sum{} {}", labels(base_labels), h.sum);
    let _ = writeln!(out, "{name}_count{} {}", labels(base_labels), h.count);
}

/// `{k1="v1",k2="v2"}`, or the empty string with no labels.
fn labels(pairs: &[(String, String)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{}\"", escape_label(v));
    }
    s.push('}');
    s
}

/// Base labels plus one extra pair (used for the histogram `le` label,
/// appended last per convention).
fn labels_with(pairs: &[(String, String)], key: &str, value: &str) -> String {
    let mut s = String::from("{");
    for (k, v) in pairs {
        let _ = write!(s, "{k}=\"{}\",", escape_label(v));
    }
    let _ = write!(s, "{key}=\"{}\"", escape_label(value));
    s.push('}');
    s
}

/// Label-value escaping: backslash, double-quote, newline.
fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            c => s.push(c),
        }
    }
    s
}

/// Help-text escaping: backslash and newline (quotes are fine here).
fn escape_help(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            c => s.push(c),
        }
    }
    s
}

/// Gauges are f64; integral values render without a decimal point so
/// counters mirrored through gauges stay readable.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, labels: &[(&str, &str)], value: SampleValue) -> Sample {
        Sample {
            name: name.into(),
            help: "h".into(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        }
    }

    #[test]
    fn families_sort_and_series_sort() {
        let text = encode_text(&[
            sample("zeta_total", &[], SampleValue::Counter(1)),
            sample("alpha_total", &[("shard", "1")], SampleValue::Counter(2)),
            sample("alpha_total", &[("shard", "0")], SampleValue::Counter(3)),
        ]);
        let alpha = text.find("alpha_total{shard=\"0\"} 3").unwrap();
        let alpha1 = text.find("alpha_total{shard=\"1\"} 2").unwrap();
        let zeta = text.find("zeta_total 1").unwrap();
        assert!(alpha < alpha1 && alpha1 < zeta);
        // One header per family, not per series.
        assert_eq!(text.matches("# TYPE alpha_total counter").count(), 1);
    }

    #[test]
    fn label_escaping() {
        let text = encode_text(&[sample(
            "esc_total",
            &[("path", "a\\b\"c\nd")],
            SampleValue::Counter(1),
        )]);
        assert!(text.contains(r#"esc_total{path="a\\b\"c\nd"} 1"#));
    }

    #[test]
    fn gauge_formatting() {
        let text = encode_text(&[
            sample("g1", &[], SampleValue::Gauge(42.0)),
            sample("g2", &[], SampleValue::Gauge(0.5)),
            sample("g3", &[], SampleValue::Gauge(-7.0)),
        ]);
        assert!(text.contains("g1 42\n"));
        assert!(text.contains("g2 0.5\n"));
        assert!(text.contains("g3 -7\n"));
    }

    #[test]
    fn histogram_cumulative_buckets() {
        let h = crate::Histogram::new();
        h.record(1); // bucket 0, le=2
        h.record(3); // bucket 1, le=4
        h.record(3);
        let text = encode_text(&[sample(
            "lat_us",
            &[("shard", "0")],
            SampleValue::Histogram(Box::new(h.snapshot())),
        )]);
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{shard=\"0\",le=\"2\"} 1"));
        assert!(text.contains("lat_us_bucket{shard=\"0\",le=\"4\"} 3"));
        assert!(text.contains("lat_us_bucket{shard=\"0\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_us_sum{shard=\"0\"} 7"));
        assert!(text.contains("lat_us_count{shard=\"0\"} 3"));
        // Buckets past the last populated one collapse into +Inf.
        assert!(!text.contains("le=\"8\""));
    }

    #[test]
    fn empty_histogram_still_parses() {
        let h = crate::Histogram::new();
        let text = encode_text(&[sample(
            "empty_us",
            &[],
            SampleValue::Histogram(Box::new(h.snapshot())),
        )]);
        assert!(text.contains("empty_us_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("empty_us_sum 0"));
        assert!(text.contains("empty_us_count 0"));
    }
}

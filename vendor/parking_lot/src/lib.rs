//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface the
//! workspace uses: infallible `lock()` / `read()` / `write()` returning
//! guards directly. Lock poisoning is transparently recovered (parking_lot
//! locks do not poison).

use std::fmt;

pub use std::sync::MutexGuard;
pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive (shim over [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking; `None` if it is
    /// currently held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// A reader-writer lock (shim over [`std::sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts shared read access without blocking; `None` if a writer
    /// holds the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn try_variants() {
        let m = Mutex::new(1);
        {
            let held = m.lock();
            assert!(m.try_lock().is_none());
            drop(held);
        }
        *m.try_lock().unwrap() += 1;
        assert_eq!(*m.lock(), 2);

        let l = RwLock::new(1);
        {
            // Readers don't block try_read…
            let r = l.read();
            assert!(l.try_read().is_some());
            drop(r);
        }
        {
            // …writers do.
            let w = l.write();
            assert!(l.try_read().is_none());
            drop(w);
        }
        assert_eq!(*l.try_read().unwrap(), 1);
    }
}

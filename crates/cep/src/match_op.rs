//! The `match` operator: a stream operator wrapping one compiled NFA.
//!
//! On every completed match the operator emits a detection tuple with the
//! gesture name, the completion timestamp and the match duration — the
//! "result tuple … which can be used to trigger arbitrary actions in any
//! listening application" of §2.

use std::sync::Arc;

use gesto_stream::{Emit, Operator, Schema, SchemaRef, Tuple, Value};

use crate::error::CepError;
use crate::expr::FunctionRegistry;
use crate::nfa::{Nfa, NfaMatch, SchemaResolver};
use crate::pattern::Query;

/// Schema of detection tuples: `(gesture: str, ts: timestamp,
/// started_at: timestamp, duration_ms: int)`.
pub fn detection_schema() -> SchemaRef {
    use gesto_stream::{Field, ValueType};
    Arc::new(
        Schema::new(
            "detections",
            vec![
                Field::new("gesture", ValueType::Str),
                Field::new("ts", ValueType::Timestamp),
                Field::new("started_at", ValueType::Timestamp),
                Field::new("duration_ms", ValueType::Int),
            ],
        )
        .expect("static detection schema"),
    )
}

/// A detection event produced by a deployed query.
#[derive(Debug, Clone)]
pub struct Detection {
    /// Gesture (query) name.
    pub gesture: String,
    /// Completion stream time.
    pub ts: i64,
    /// Stream time of the first matched event.
    pub started_at: i64,
    /// The matched event tuples, one per pattern step. Shared: cloning a
    /// detection (e.g. fanning it out to several sinks) bumps one
    /// refcount instead of deep-copying the events; call
    /// [`Self::events_vec`] to materialise an owned copy at the facade
    /// boundary.
    pub events: Arc<[Tuple]>,
}

impl Detection {
    /// Duration of the gesture in stream milliseconds.
    pub fn duration_ms(&self) -> i64 {
        self.ts - self.started_at
    }

    /// Materialises an owned copy of the matched event tuples (the
    /// internal storage is shared).
    pub fn events_vec(&self) -> Vec<Tuple> {
        self.events.to_vec()
    }

    /// Converts to a detection tuple (drops the per-step events).
    pub fn to_tuple(&self, schema: &SchemaRef) -> Tuple {
        Tuple::new_unchecked(
            schema.clone(),
            vec![
                Value::Str(self.gesture.clone()),
                Value::Timestamp(self.ts),
                Value::Timestamp(self.started_at),
                Value::Int(self.duration_ms()),
            ],
        )
    }

    fn from_match(gesture: &str, m: NfaMatch) -> Self {
        Self {
            gesture: gesture.to_owned(),
            ts: m.ts,
            started_at: m.started_at,
            events: m.events,
        }
    }
}

/// Stream operator running one query's NFA over a single input stream.
///
/// The operator assumes its input *is* the stream every event pattern in
/// the query references (the usual case: all steps read `kinect_t`). For
/// multi-source patterns use [`crate::Engine`], which routes by source
/// name.
pub struct MatchOp {
    query_name: String,
    source: String,
    nfa: Nfa,
    schema: SchemaRef,
}

impl MatchOp {
    /// Compiles `query` into a match operator reading tuples of `source`.
    pub fn new(
        query: &Query,
        source: impl Into<String>,
        resolver: &dyn SchemaResolver,
        funcs: &FunctionRegistry,
    ) -> Result<Self, CepError> {
        let nfa = Nfa::compile(&query.pattern, resolver, funcs)?;
        Ok(Self {
            query_name: query.name.clone(),
            source: source.into(),
            nfa,
            schema: detection_schema(),
        })
    }

    /// Direct access to the matches for one tuple (non-operator use).
    pub fn push(&mut self, tuple: &Tuple) -> Result<Vec<Detection>, CepError> {
        Ok(self
            .nfa
            .advance(&self.source, tuple)?
            .into_iter()
            .map(|m| Detection::from_match(&self.query_name, m))
            .collect())
    }

    /// The wrapped NFA (inspection).
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }
}

impl Operator for MatchOp {
    fn name(&self) -> &str {
        &self.query_name
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, tuple: &Tuple, emit: &mut Emit<'_>) {
        // Evaluation errors at runtime (e.g. nulls in arithmetic that the
        // UDF rejects) drop the tuple rather than poisoning the stream.
        if let Ok(matches) = self.nfa.advance(&self.source, tuple) {
            for m in matches {
                let d = Detection::from_match(&self.query_name, m);
                emit(d.to_tuple(&self.schema));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::SingleSchema;
    use crate::parser::parse_query;
    use gesto_stream::{run_operator, SchemaBuilder};

    fn schema() -> SchemaRef {
        SchemaBuilder::new("k")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap()
    }

    fn tup(ts: i64, x: f64) -> Tuple {
        Tuple::new(schema(), vec![Value::Timestamp(ts), Value::Float(x)]).unwrap()
    }

    #[test]
    fn emits_detection_tuples() {
        let q = parse_query(r#"SELECT "updown" MATCHING k(x > 9) -> k(x < 1) within 1 seconds;"#)
            .unwrap();
        let mut op = MatchOp::new(
            &q,
            "k",
            &SingleSchema(schema()),
            &FunctionRegistry::with_builtins(),
        )
        .unwrap();
        let out = run_operator(&mut op, &[tup(0, 10.0), tup(100, 5.0), tup(200, 0.5)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].str("gesture"), Some("updown"));
        assert_eq!(out[0].timestamp(), Some(200));
        assert_eq!(out[0].i64("duration_ms"), Some(200));
        assert_eq!(out[0].i64("started_at"), Some(0));
    }

    #[test]
    fn push_returns_rich_detections() {
        let q = parse_query(r#"SELECT "g" MATCHING k(x > 9) -> k(x < 1);"#).unwrap();
        let mut op = MatchOp::new(
            &q,
            "k",
            &SingleSchema(schema()),
            &FunctionRegistry::with_builtins(),
        )
        .unwrap();
        assert!(op.push(&tup(0, 10.0)).unwrap().is_empty());
        let ds = op.push(&tup(50, 0.0)).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].events.len(), 2);
        assert_eq!(ds[0].events[0].f64("x"), Some(10.0));
        assert_eq!(ds[0].duration_ms(), 50);
    }
}

//! Paper fixtures: the Fig. 1 query text, verbatim (modulo whitespace).

/// The `swipe_right` detection query from Fig. 1 of the paper.
///
/// Three poses of the right hand relative to the torso — start at
/// (0, 150, −120), middle at (400, 150, −420), end at (800, 150, −120) —
/// each with a ±50 window, consecutive poses within 1 second.
pub const FIG1_QUERY: &str = r#"SELECT "swipe_right"
MATCHING (
  kinect(
    abs(rHand_x - torso_x - 0) < 50 and
    abs(rHand_y - torso_y - 150) < 50 and
    abs(rHand_z - torso_z + 120) < 50
  ) ->
  kinect(
    abs(rHand_x - torso_x - 400) < 50 and
    abs(rHand_y - torso_y - 150) < 50 and
    abs(rHand_z - torso_z + 420) < 50
  )
  within 1 seconds select first consume all
) ->
kinect(
  abs(rHand_x - torso_x - 800) < 50 and
  abs(rHand_y - torso_y - 150) < 50 and
  abs(rHand_z - torso_z + 120) < 50
)
within 1 seconds select first consume all;
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn fixture_parses() {
        let q = parse_query(FIG1_QUERY).unwrap();
        assert_eq!(q.name, "swipe_right");
        assert_eq!(q.pattern.event_count(), 3);
    }
}

//! # gesto-control — the interactive gesture-learning workflow
//!
//! §3.1 of *Beier et al., "Learning Event Patterns for Gesture
//! Detection"* (EDBT 2014): control gestures steer the learning tool
//! itself (wave = record a sample, two-hand swipe = finalise), stillness
//! segmentation brackets each recording, and finalisation deploys the
//! generated query into the live CEP engine.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod control_gestures;
mod motion;
mod session;
mod teach;
mod workflow;

pub use control_gestures::{control_queries, is_control_name, FINISH_CONTROL, WAVE_CONTROL};
pub use motion::{MotionConfig, MotionDetector, MotionState};
pub use session::{ControlSignals, Session, SessionEvent, SessionState};
pub use teach::learn_into_store;
pub use workflow::{Workflow, WorkflowError, WorkflowEvent};

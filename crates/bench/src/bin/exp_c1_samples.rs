//! C1 — "Usually, 3-5 samples are sufficient to achieve acceptable
//! results" (§3).
//!
//! Detection rate and false-positive rate as a function of the number of
//! training samples, across a persona sweep and a gesture set.

use gesto_bench::Table;
use gesto_bench::{detect, engine_with, learn_gesture, pct, perform, persona_sweep};
use gesto_kinect::gestures;
use gesto_learn::LearnerConfig;

const TRIALS_PER_PERSONA: usize = 2;
/// Independent learned sets per k (averages out which-sample luck).
const SETS: usize = 3;

fn main() {
    println!("C1 — detection accuracy vs number of training samples");
    println!("=======================================================\n");

    let gesture_set = vec![
        gestures::swipe_right(),
        gestures::swipe_left(),
        gestures::swipe_up(),
        gestures::swipe_down(),
        gestures::push(),
        gestures::circle(),
        gestures::raise_both_hands(),
        gestures::zigzag(),
    ];
    let sweep = persona_sweep();
    println!(
        "{} gestures x {} personas x {} trials x {} learned sets per row\n",
        gesture_set.len(),
        sweep.len(),
        TRIALS_PER_PERSONA,
        SETS
    );

    let mut table = Table::new(&[
        "training samples",
        "true-positive rate",
        "false-positive rate",
        "avg poses/gesture",
    ]);

    for k in 1..=8usize {
        let mut tp = 0;
        let mut tp_total = 0;
        let mut fp = 0;
        let mut fp_total = 0;
        let mut poses = 0usize;
        for set in 0..SETS as u64 {
            // Learn the whole gesture set with k samples each.
            let defs: Vec<_> = gesture_set
                .iter()
                .map(|spec| {
                    learn_gesture(
                        spec,
                        k,
                        7000 + k as u64 * 100 + set * 37,
                        LearnerConfig::default(),
                    )
                })
                .collect();
            let engine = engine_with(&defs);
            poses += defs.iter().map(|d| d.pose_count()).sum::<usize>();

            for spec in &gesture_set {
                for (pi, (_, persona)) in sweep.iter().enumerate() {
                    for t in 0..TRIALS_PER_PERSONA as u64 {
                        let seed = 90_000 + (k as u64) * 1000 + set * 131 + (pi as u64) * 10 + t;
                        let frames = perform(spec, persona, seed);
                        let hits = detect(&engine, &frames);
                        tp_total += 1;
                        if hits.iter().any(|h| h == &spec.name) {
                            tp += 1;
                        }
                        // Any *other* gesture firing is a false positive.
                        fp_total += 1;
                        if hits.iter().any(|h| h != &spec.name) {
                            fp += 1;
                        }
                    }
                }
            }
        }
        let avg_poses = poses as f64 / (SETS * gesture_set.len()) as f64;
        table.row(&[
            format!("{k}"),
            pct(tp, tp_total),
            pct(fp, fp_total),
            format!("{avg_poses:.1}"),
        ]);
    }
    table.print();

    println!("\nexpected shape (paper §3): accuracy climbs steeply over the first");
    println!("samples and plateaus in the 3-5 sample range the paper reports.");
}

//! Process-global telemetry statics for the columnar substrate.
//!
//! Like `gesto_cep::metrics`, these are `const`-initialised statics
//! updated with relaxed atomic adds from the hot path and exported by
//! `'static` reference from `gesto-serve`'s registry — the block
//! builders are shared by every session and have no registry handle to
//! thread through.

use gesto_telemetry::ShardedCounter;

/// Columnar frame blocks materialised ([`crate::ColumnBlock::begin`] /
/// `begin_filtered` calls).
///
/// Sharded variants: every shard worker builds blocks on every batch,
/// so a single-atomic counter would false-share one cache line across
/// all pinned cores (see `gesto_cep::metrics`).
pub static BLOCKS_BUILT_TOTAL: ShardedCounter = ShardedCounter::new();

/// Rows materialised across all built blocks.
pub static BLOCK_ROWS_BUILT_TOTAL: ShardedCounter = ShardedCounter::new();

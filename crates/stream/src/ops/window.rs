//! Count-based sliding windows.

use std::collections::VecDeque;

use crate::tuple::Tuple;

/// A fixed-capacity sliding window over the most recent tuples.
///
/// This is a building block (not an [`crate::Operator`]): the motion
/// detector in `gesto-control` and the sliding aggregates keep one and
/// query it per frame.
#[derive(Debug, Clone)]
pub struct CountWindow {
    buf: VecDeque<Tuple>,
    capacity: usize,
}

impl CountWindow {
    /// Creates a window holding at most `capacity` tuples (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes a tuple, evicting the oldest when full. Returns the evicted
    /// tuple, if any.
    pub fn push(&mut self, t: Tuple) -> Option<Tuple> {
        let evicted = if self.buf.len() == self.capacity {
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(t);
        evicted
    }

    /// Current number of buffered tuples.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no tuples are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True once the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Iterates oldest-to-newest.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.buf.iter()
    }

    /// The newest tuple.
    pub fn newest(&self) -> Option<&Tuple> {
        self.buf.back()
    }

    /// The oldest tuple.
    pub fn oldest(&self) -> Option<&Tuple> {
        self.buf.front()
    }

    /// Drops all buffered tuples.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Time span (newest ts − oldest ts) in stream milliseconds, or 0 when
    /// fewer than two tuples are buffered or timestamps are missing.
    pub fn span_ms(&self) -> i64 {
        match (
            self.oldest().and_then(Tuple::timestamp),
            self.newest().and_then(Tuple::timestamp),
        ) {
            (Some(a), Some(b)) => (b - a).max(0),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::Value;

    fn mk(ts: i64) -> Tuple {
        let schema = SchemaBuilder::new("s").timestamp("ts").build().unwrap();
        Tuple::new(schema, vec![Value::Timestamp(ts)]).unwrap()
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut w = CountWindow::new(3);
        assert!(w.push(mk(1)).is_none());
        assert!(w.push(mk(2)).is_none());
        assert!(!w.is_full());
        assert!(w.push(mk(3)).is_none());
        assert!(w.is_full());
        let evicted = w.push(mk(4)).unwrap();
        assert_eq!(evicted.timestamp(), Some(1));
        assert_eq!(w.oldest().unwrap().timestamp(), Some(2));
        assert_eq!(w.newest().unwrap().timestamp(), Some(4));
    }

    #[test]
    fn span_and_clear() {
        let mut w = CountWindow::new(10);
        assert_eq!(w.span_ms(), 0);
        w.push(mk(100));
        assert_eq!(w.span_ms(), 0);
        w.push(mk(400));
        assert_eq!(w.span_ms(), 300);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut w = CountWindow::new(0);
        w.push(mk(1));
        w.push(mk(2));
        assert_eq!(w.len(), 1);
        assert_eq!(w.newest().unwrap().timestamp(), Some(2));
    }
}

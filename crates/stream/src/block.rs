//! Columnar (structure-of-arrays) batch representation.
//!
//! The row-major [`Tuple`] is the right shape for operators that rewrite
//! whole rows, but the gesture hot loop evaluates a handful of float
//! predicates over the same few columns of every tuple in a batch. A
//! [`ColumnBlock`] lays a batch out column-major: every `Float`-typed
//! column becomes one contiguous `f64` lane plus two validity bitmaps
//! (`Null` cells, and non-float cells such as an `Int` widening into a
//! float slot), so a predicate kernel can stream through a cache-line of
//! values with branch-free, autovectorizable loops. Non-float columns get
//! no lane at all — consumers fall back to the row-major tuples, which
//! remain the source of truth (the block is a *derived* view built once
//! per batch, never the owner of the data).
//!
//! Invalid cells still occupy a slot in the lane (holding an arbitrary
//! value) so row indices line up across lanes and with the tuple slice
//! the block was built from; kernels mask their results with the bitmaps.
//! All buffers are reused across batches: rebuilding a block for a new
//! batch of the same schema performs no heap allocation once warm.

use crate::schema::SchemaRef;
use crate::tuple::Tuple;
use crate::value::{Value, ValueType};

/// A fixed-length bitmask, one bit per batch row, stored as `u64` words
/// (bit `r % 64` of word `r / 64`). Bits past the length are always zero,
/// so word-wise folds need no tail handling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitMask {
    words: Vec<u64>,
    bits: usize,
}

impl BitMask {
    /// An empty mask.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `u64` words needed for `bits` bits.
    pub fn words_for(bits: usize) -> usize {
        bits.div_ceil(64)
    }

    /// Resizes to `bits` bits, all zero. Capacity-preserving: shrinking
    /// or re-growing within a previous high-water mark never allocates.
    pub fn reset(&mut self, bits: usize) {
        self.bits = bits;
        self.words.clear();
        self.words.resize(Self::words_for(bits), 0);
    }

    /// Sets every bit (bits past the length stay zero).
    pub fn set_all(&mut self) {
        self.words.fill(!0u64);
        self.mask_tail();
    }

    /// Zeroes the unused high bits of the last word.
    fn mask_tail(&mut self) {
        let tail = self.bits % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// True when the mask has zero bits.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.bits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.bits);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// The backing words (immutable).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The backing words (mutable). Callers must keep bits past the
    /// length zero (use [`Self::mask_tail_words`] after bulk writes).
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Re-zeroes the out-of-range tail bits after bulk word writes.
    pub fn mask_tail_words(&mut self) {
        self.mask_tail();
    }

    /// True when any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Copies another mask of the same length into this one.
    pub fn copy_from(&mut self, other: &BitMask) {
        self.bits = other.bits;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }
}

/// One float column of a [`ColumnBlock`]: a contiguous `f64` lane plus
/// validity bitmaps. `data[r]` is meaningful only where neither bitmap
/// has bit `r` set.
#[derive(Debug, Default)]
pub struct FloatLane {
    data: Vec<f64>,
    /// The cell held [`Value::Null`].
    null: BitMask,
    /// The cell held a non-float, non-null value (e.g. an `Int` widening
    /// into a float slot, or a foreign-schema row): consumers must fall
    /// back to the row-major tuple for exact semantics.
    other: BitMask,
}

impl FloatLane {
    /// The value lane (garbage where a validity bitmap is set).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Rows whose cell was `Null`.
    #[inline]
    pub fn null(&self) -> &BitMask {
        &self.null
    }

    /// Rows whose cell held a non-float, non-null value.
    #[inline]
    pub fn other(&self) -> &BitMask {
        &self.other
    }

    fn reset(&mut self, rows: usize) {
        self.data.clear();
        self.data.resize(rows, 0.0);
        self.null.reset(rows);
        self.other.reset(rows);
    }
}

/// A column-major view of one batch of same-schema tuples.
///
/// Built once per batch next to the row-major scratch (from tuples via
/// [`Self::fill_from_tuples`], or straight from sensor frames by
/// `gesto_kinect::KinectSlots::write_block`). Only `Float`-typed schema
/// columns get lanes; everything else — and any row whose tuple carries
/// a different schema than the block layout — is reported through the
/// `other` bitmap so consumers replay those rows against the tuples.
#[derive(Debug, Default)]
pub struct ColumnBlock {
    rows: usize,
    /// Lane index per schema column (`None` for non-float columns).
    lane_of: Vec<Option<u32>>,
    lanes: Vec<FloatLane>,
    /// Whether each lane was materialised for the *current* batch (a
    /// column-filtered fill skips unread lanes; [`Self::lane`] hides
    /// the skipped ones so consumers fall back to the tuples).
    built: Vec<bool>,
    /// Schema the layout was resolved against (pointer identity is used
    /// as the cheap per-batch check; a different `Arc` re-resolves).
    schema: Option<SchemaRef>,
}

impl ColumnBlock {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rows in the current batch.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when the current batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The lane of schema column `col`, or `None` when the column is
    /// not float-typed (or out of range / no layout yet / skipped by
    /// the current batch's column filter).
    #[inline]
    pub fn lane(&self, col: usize) -> Option<&FloatLane> {
        let idx = (*self.lane_of.get(col)?)?;
        self.built[idx as usize].then(|| &self.lanes[idx as usize])
    }

    /// Drops the current batch (keeps the layout and all capacity).
    pub fn clear(&mut self) {
        self.rows = 0;
        for lane in &mut self.lanes {
            lane.reset(0);
        }
    }

    /// Resolves the lane layout for `schema` (no-op when the layout is
    /// already for this schema `Arc`).
    fn ensure_layout(&mut self, schema: &SchemaRef) {
        if let Some(s) = &self.schema {
            if std::sync::Arc::ptr_eq(s, schema) {
                return;
            }
        }
        self.lane_of.clear();
        let mut lanes = 0u32;
        for f in schema.fields() {
            if f.ty == ValueType::Float {
                self.lane_of.push(Some(lanes));
                lanes += 1;
            } else {
                self.lane_of.push(None);
            }
        }
        // Reuse existing lane buffers; only grow the vector if the new
        // schema has more float columns than any previous one.
        if self.lanes.len() < lanes as usize {
            self.lanes.resize_with(lanes as usize, FloatLane::default);
        }
        self.built.clear();
        self.built.resize(self.lanes.len(), false);
        self.schema = Some(schema.clone());
    }

    /// Starts a new batch of `rows` rows laid out for `schema`, with
    /// every lane cell marked `Null` (the state of an unwritten slot).
    /// Writers then fill cells with [`Self::write_float`]. Reuses all
    /// buffers; allocation-free once warm.
    pub fn begin(&mut self, schema: &SchemaRef, rows: usize) {
        self.begin_filtered(schema, rows, None);
    }

    /// [`Self::begin`] restricted to a column filter (same contract as
    /// [`Self::fill_from_tuples_filtered`]): only the listed float
    /// columns are materialised; writes to skipped lanes are ignored
    /// and those lanes read back as absent.
    pub fn begin_filtered(&mut self, schema: &SchemaRef, rows: usize, cols: Option<&[usize]>) {
        crate::metrics::BLOCKS_BUILT_TOTAL.inc();
        crate::metrics::BLOCK_ROWS_BUILT_TOTAL.add(rows as u64);
        self.ensure_layout(schema);
        self.rows = rows;
        for (c, slot) in self.lane_of.iter().enumerate() {
            let Some(i) = slot else { continue };
            let wanted = cols.is_none_or(|f| f.binary_search(&c).is_ok());
            self.built[*i as usize] = wanted;
            if wanted {
                let lane = &mut self.lanes[*i as usize];
                lane.reset(rows);
                lane.null.set_all();
            }
        }
    }

    /// Writes one float cell (clearing its `Null` mark). `col` must be a
    /// float column of the layout schema; non-float columns — and lanes
    /// skipped by the [`Self::begin_filtered`] column filter — are
    /// ignored.
    #[inline]
    pub fn write_float(&mut self, col: usize, row: usize, v: f64) {
        if let Some(Some(i)) = self.lane_of.get(col) {
            if self.built[*i as usize] {
                let lane = &mut self.lanes[*i as usize];
                lane.data[row] = v;
                lane.null.unset(row);
            }
        }
    }

    /// Builds the block from a row-major batch: layout from the first
    /// tuple's schema, one pass per float column. Rows whose tuple
    /// carries a different schema `Arc` (or arity) than the first are
    /// marked `other` in every lane, forcing consumers back to the exact
    /// row-major semantics for those rows.
    pub fn fill_from_tuples(&mut self, tuples: &[Tuple]) {
        self.fill_from_tuples_filtered(tuples, None);
    }

    /// [`Self::fill_from_tuples`] restricted to a column filter: only
    /// the float columns listed in `cols` (sorted, deduplicated) are
    /// materialised; the skipped lanes read back as absent, so kernels
    /// fall back to the tuples for anything outside the filter. With
    /// `None`, every float column is built.
    ///
    /// The filter is how the data path avoids paying for the full
    /// 45-float joint block when the deployed gestures read a handful
    /// of joints: the engine/serve sync passes exactly the columns some
    /// compiled predicate reads.
    pub fn fill_from_tuples_filtered(&mut self, tuples: &[Tuple], cols: Option<&[usize]>) {
        let Some(first) = tuples.first() else {
            self.rows = 0;
            return;
        };
        let schema = first.schema().clone();
        self.ensure_layout(&schema);
        self.rows = tuples.len();
        let ncols = schema.len();
        for (c, slot) in self.lane_of.iter().enumerate() {
            let Some(i) = slot else { continue };
            let wanted = cols.is_none_or(|f| f.binary_search(&c).is_ok());
            self.built[*i as usize] = wanted;
            if !wanted {
                continue;
            }
            let lane = &mut self.lanes[*i as usize];
            lane.reset(tuples.len());
            for (r, t) in tuples.iter().enumerate() {
                let vals = t.values();
                if !std::sync::Arc::ptr_eq(t.schema(), &schema) || vals.len() != ncols {
                    lane.other.set(r);
                    continue;
                }
                match &vals[c] {
                    Value::Float(x) => lane.data[r] = *x,
                    Value::Null => lane.null.set(r),
                    _ => lane.other.set(r),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    fn schema() -> SchemaRef {
        SchemaBuilder::new("k")
            .timestamp("ts")
            .float("x")
            .float("y")
            .str("tag")
            .build()
            .unwrap()
    }

    #[test]
    fn bitmask_basics() {
        let mut m = BitMask::new();
        m.reset(70);
        assert_eq!(m.len(), 70);
        assert!(!m.any());
        m.set(0);
        m.set(69);
        assert!(m.get(0) && m.get(69) && !m.get(1));
        assert_eq!(m.count(), 2);
        m.unset(0);
        assert_eq!(m.count(), 1);
        m.set_all();
        assert_eq!(m.count(), 70, "tail bits masked");
        assert_eq!(m.words().len(), 2);
        assert_eq!(m.words()[1] >> 6, 0, "bits past len stay zero");
        m.reset(3);
        assert!(!m.any(), "reset zeroes");
    }

    #[test]
    fn lanes_only_for_float_columns() {
        let s = schema();
        let tuples = vec![
            Tuple::new(
                s.clone(),
                vec![
                    Value::Timestamp(0),
                    Value::Float(1.5),
                    Value::Null,
                    Value::Str("a".into()),
                ],
            )
            .unwrap(),
            Tuple::new(
                s.clone(),
                vec![
                    Value::Timestamp(1),
                    Value::Int(2),
                    Value::Float(3.0),
                    Value::Null,
                ],
            )
            .unwrap(),
        ];
        let mut b = ColumnBlock::new();
        b.fill_from_tuples(&tuples);
        assert_eq!(b.rows(), 2);
        assert!(b.lane(0).is_none(), "timestamp column has no lane");
        assert!(b.lane(3).is_none(), "str column has no lane");
        assert!(b.lane(99).is_none());

        let x = b.lane(1).unwrap();
        assert_eq!(x.values()[0], 1.5);
        assert!(!x.null().get(0) && !x.other().get(0));
        assert!(x.other().get(1), "Int widening is an `other` cell");

        let y = b.lane(2).unwrap();
        assert!(y.null().get(0), "Null cell flagged");
        assert_eq!(y.values()[1], 3.0);
    }

    #[test]
    fn refill_reuses_layout_and_capacity() {
        let s = schema();
        let mk = |n: usize| -> Vec<Tuple> {
            (0..n)
                .map(|i| {
                    Tuple::new(
                        s.clone(),
                        vec![
                            Value::Timestamp(i as i64),
                            Value::Float(i as f64),
                            Value::Float(0.0),
                            Value::Null,
                        ],
                    )
                    .unwrap()
                })
                .collect()
        };
        let mut b = ColumnBlock::new();
        b.fill_from_tuples(&mk(8));
        assert_eq!(b.rows(), 8);
        b.fill_from_tuples(&mk(3));
        assert_eq!(b.rows(), 3);
        assert_eq!(b.lane(1).unwrap().values(), &[0.0, 1.0, 2.0]);
        b.fill_from_tuples(&[]);
        assert_eq!(b.rows(), 0);
    }

    #[test]
    fn foreign_schema_rows_are_other() {
        let s = schema();
        // Same layout, different Arc: pointer identity must flag the row.
        let s2 = SchemaBuilder::new("k")
            .timestamp("ts")
            .float("x")
            .float("y")
            .str("tag")
            .build()
            .unwrap();
        let t1 = Tuple::new(
            s.clone(),
            vec![
                Value::Timestamp(0),
                Value::Float(1.0),
                Value::Float(2.0),
                Value::Null,
            ],
        )
        .unwrap();
        let t2 = Tuple::new(
            s2,
            vec![
                Value::Timestamp(1),
                Value::Float(9.0),
                Value::Float(9.0),
                Value::Null,
            ],
        )
        .unwrap();
        let mut b = ColumnBlock::new();
        b.fill_from_tuples(&[t1, t2]);
        let x = b.lane(1).unwrap();
        assert!(!x.other().get(0));
        assert!(x.other().get(1), "foreign-schema row forced to fallback");
    }

    #[test]
    fn begin_write_float_matches_fill() {
        let s = schema();
        let tuples = vec![Tuple::new(
            s.clone(),
            vec![
                Value::Timestamp(0),
                Value::Float(4.0),
                Value::Null,
                Value::Null,
            ],
        )
        .unwrap()];
        let mut via_fill = ColumnBlock::new();
        via_fill.fill_from_tuples(&tuples);
        let mut via_write = ColumnBlock::new();
        via_write.begin(&s, 1);
        via_write.write_float(1, 0, 4.0);
        via_write.write_float(0, 0, 123.0); // non-float column: ignored
        for c in 0..s.len() {
            match (via_fill.lane(c), via_write.lane(c)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.values(), b.values(), "col {c}");
                    assert_eq!(a.null(), b.null(), "col {c}");
                    assert_eq!(a.other(), b.other(), "col {c}");
                }
                other => panic!("lane presence diverged on col {c}: {other:?}"),
            }
        }
    }
}

//! Network-edge metrics: counters plus a lock-free power-of-two
//! latency histogram for the frame-received → detection-pushed path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two buckets in [`LatencyHistogram`]: bucket `i`
/// covers `[2^i, 2^(i+1))` microseconds (bucket 0 covers `[0, 2)`),
/// topping out above half an hour.
pub const LATENCY_BUCKETS: usize = 32;

/// Lock-free histogram of microsecond latencies with power-of-two
/// buckets. Cheap enough to sit on the detection hot path: one atomic
/// increment per sample.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&self, us: u64) {
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Largest recorded sample in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate (bucket ceiling) of the given quantile
    /// (`0.0..=1.0`), or 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        self.max_us()
    }

    /// Raw bucket counts (bucket `i` = samples in `[2^i, 2^(i+1))` µs).
    pub fn buckets(&self) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// Shared counters behind [`NetMetrics`]. Internal to the crate; the
/// public snapshot view is [`NetMetrics`].
#[derive(Default)]
pub(crate) struct NetMetricsInner {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_closed: AtomicU64,
    pub(crate) connections_active: AtomicU64,
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) frames_received: AtomicU64,
    pub(crate) batches_received: AtomicU64,
    pub(crate) batches_parked: AtomicU64,
    pub(crate) batches_rejected: AtomicU64,
    pub(crate) detections_sent: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) slow_consumer_drops: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
    pub(crate) bytes_out: AtomicU64,
    pub(crate) latency: LatencyHistogram,
}

impl NetMetricsInner {
    pub(crate) fn bytes_in(&self, n: u64) {
        self.bytes_in.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn bytes_out(&self, n: u64) {
        self.bytes_out.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn slow_consumer_drop(&self) {
        self.slow_consumer_drops.fetch_add(1, Ordering::Relaxed);
    }
}

/// Read-side handle over the network edge's metrics.
///
/// Obtained from [`crate::net::NetServer::metrics`]; all accessors are
/// wait-free reads of relaxed atomics, safe to call from any thread
/// while the server runs.
#[derive(Clone)]
pub struct NetMetrics {
    pub(crate) inner: Arc<NetMetricsInner>,
}

impl NetMetrics {
    /// Connections accepted since startup.
    pub fn connections_accepted(&self) -> u64 {
        self.inner.connections_accepted.load(Ordering::Relaxed)
    }

    /// Connections fully torn down since startup.
    pub fn connections_closed(&self) -> u64 {
        self.inner.connections_closed.load(Ordering::Relaxed)
    }

    /// Connections currently registered with the event loop.
    pub fn connections_active(&self) -> u64 {
        self.inner.connections_active.load(Ordering::Relaxed)
    }

    /// Sessions opened over the network since startup.
    pub fn sessions_opened(&self) -> u64 {
        self.inner.sessions_opened.load(Ordering::Relaxed)
    }

    /// Skeleton frames decoded off the wire and accepted.
    pub fn frames_received(&self) -> u64 {
        self.inner.frames_received.load(Ordering::Relaxed)
    }

    /// Frame batches decoded off the wire and accepted.
    pub fn batches_received(&self) -> u64 {
        self.inner.batches_received.load(Ordering::Relaxed)
    }

    /// Batches that had to park because a shard queue was full under
    /// the blocking backpressure policy (each park pauses that
    /// connection's reads until the shard drains).
    pub fn batches_parked(&self) -> u64 {
        self.inner.batches_parked.load(Ordering::Relaxed)
    }

    /// Batches refused with a `QueueFull` error frame (rejecting
    /// backpressure policy).
    pub fn batches_rejected(&self) -> u64 {
        self.inner.batches_rejected.load(Ordering::Relaxed)
    }

    /// Detection messages pushed onto client connections.
    pub fn detections_sent(&self) -> u64 {
        self.inner.detections_sent.load(Ordering::Relaxed)
    }

    /// Malformed or out-of-contract messages received.
    pub fn protocol_errors(&self) -> u64 {
        self.inner.protocol_errors.load(Ordering::Relaxed)
    }

    /// Connections condemned because their detection outbox overflowed.
    pub fn slow_consumer_drops(&self) -> u64 {
        self.inner.slow_consumer_drops.load(Ordering::Relaxed)
    }

    /// Total bytes read off client sockets.
    pub fn bytes_in(&self) -> u64 {
        self.inner.bytes_in.load(Ordering::Relaxed)
    }

    /// Total bytes written to client sockets.
    pub fn bytes_out(&self) -> u64 {
        self.inner.bytes_out.load(Ordering::Relaxed)
    }

    /// Histogram of frame-received → detection-pushed latency: the time
    /// from the last wire batch accepted on a session to a detection
    /// for that session entering the socket outbox.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.inner.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(1); // bucket 0: [0, 2)
        h.record(2);
        h.record(3); // bucket 1: [2, 4)
        h.record(1024); // bucket 10
        let b = h.buckets();
        assert_eq!(b[0], 2);
        assert_eq!(b[1], 2);
        assert_eq!(b[10], 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_us(), 1024);
    }

    #[test]
    fn quantiles_are_bucket_ceilings() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(3); // bucket 1, ceiling 4
        }
        h.record(1_000_000); // bucket 19, ceiling 2^20
        assert_eq!(h.quantile_us(0.5), 4);
        assert_eq!(h.quantile_us(0.99), 4);
        assert_eq!(h.quantile_us(1.0), 1 << 20);
        assert!(h.mean_us() > 3.0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
    }
}

//! Crash-recovery sweep: a durable server's journal is cut dead (or
//! bit-flipped) at **every record boundary and a hundred random byte
//! offsets**, and for each mutilation a fresh server is started from
//! the wreckage. The invariant under test is the one `docs/DURABILITY.md`
//! promises: a crash at *any* byte yields a **valid prefix** of the
//! op log — recovery never panics, never invents state, and restores
//! exactly the control-plane state the server had after the last
//! fully-persisted op.
//!
//! The expected states are captured live while the op log is built
//! (`states[n]` = control-plane state after `n` journal records), so
//! the sweep compares restarted servers against *observed* history,
//! not against a re-implementation of replay.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use gesto_durability::replay_dir;
use gesto_kinect::{gestures, Performer, Persona, SkeletonFrame};
use gesto_serve::{DurabilityConfig, Server, ServerConfig};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gesto-crash-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn swipe_frames(seed: u64) -> Vec<SkeletonFrame> {
    let mut p = Performer::new(Persona::reference().with_seed(seed), 0);
    p.render(&gestures::swipe_right())
}

/// One shard, checkpoints effectively disabled: the whole history lives
/// in a single journal segment so truncation offsets map 1:1 to op-log
/// prefixes (checkpoint interplay is covered by the serve unit tests).
fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig::new()
        .with_shards(1)
        .with_durability_config(DurabilityConfig::new(dir).with_checkpoint_every(1_000_000))
}

/// The control-plane state a restart must reproduce, down to the store
/// content checksum.
#[derive(Debug, Clone, PartialEq)]
struct ControlState {
    deployed: Vec<(String, u32)>,
    config: Vec<(String, String)>,
    store_names: Vec<String>,
    store_crc: u32,
}

fn state_of(server: &Server) -> ControlState {
    let mut deployed = server.deployed_versions();
    deployed.sort();
    ControlState {
        deployed,
        config: server.config_entries().into_iter().collect(),
        store_names: server.store().names(),
        store_crc: server.store().snapshot().crc,
    }
}

/// Builds the op log (teach + deploys + config + undeploy + redeploy)
/// and records the control-plane state after every journal record
/// count. Returns the per-record-count states; the journal stays on
/// disk in `dir`.
fn build_oplog(dir: &Path) -> BTreeMap<usize, ControlState> {
    let server = Server::try_start(durable_config(dir)).unwrap();
    let mut states = BTreeMap::new();
    states.insert(0, state_of(&server));
    // `note` after each API call: one call may append several records
    // (teach = PutRecord + Deploy), so states are keyed by the record
    // count actually on disk, read back through the public replay API.
    macro_rules! note {
        () => {
            states.insert(replay_dir(dir, 0).unwrap().records.len(), state_of(&server))
        };
    }

    let samples: Vec<Vec<SkeletonFrame>> = (0..2).map(|s| swipe_frames(40 + s)).collect();
    server.teach("swipe_right", &samples).unwrap();
    note!();
    for i in 0..5 {
        let text = format!(r#"SELECT "g{i}" MATCHING kinect(head_y > {i}000.0);"#);
        server.deploy_text(&text).unwrap();
        note!();
    }
    server.set_config("mode", "demo").unwrap();
    note!();
    server.set_config("owner", "sweep").unwrap();
    note!();
    server.undeploy("g2").unwrap();
    note!();
    // Redeploy bumps g1 to version 2 — the sweep must restore the
    // version number, not just the plan set.
    server
        .deploy_text(r#"SELECT "g1" MATCHING kinect(head_y > 999.0);"#)
        .unwrap();
    note!();
    server.set_config("mode", "prod").unwrap();
    note!();
    server.shutdown();
    states
}

/// The single journal segment file in `dir`.
fn segment_path(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    assert_eq!(segments.len(), 1, "sweep expects a single journal segment");
    segments.pop().unwrap()
}

/// End offsets of every record (including 0, the empty prefix), walked
/// from the framing: `[payload_len u32][seq u64][crc u32][payload]`.
fn record_boundaries(segment: &[u8]) -> Vec<usize> {
    let mut ends = vec![0usize];
    let mut off = 0usize;
    while off + 16 <= segment.len() {
        let len = u32::from_le_bytes(segment[off..off + 4].try_into().unwrap()) as usize;
        let end = off + 16 + len;
        if end > segment.len() {
            break;
        }
        ends.push(end);
        off = end;
    }
    assert_eq!(off, segment.len(), "op-log builder left a torn tail");
    ends
}

fn copy_journal_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let path = entry.unwrap().path();
        std::fs::copy(&path, dst.join(path.file_name().unwrap())).unwrap();
    }
}

/// Deterministic PRNG (splitmix64) so the "random" offsets are the
/// same on every run — a failing offset must stay reproducible.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

enum Fault {
    TruncateAt(usize),
    BitFlipAt(usize),
}

/// Copies the pristine journal dir, applies the fault to the segment
/// file, and verifies the crash invariant:
/// 1. replay yields exactly `full_records[..expected_prefix]`;
/// 2. a server starting from the wreckage recovers without error;
/// 3. if the expected state for that prefix was observed during the
///    build, the restarted server reproduces it bit for bit.
fn check_crash(
    pristine: &Path,
    fault: Fault,
    case: &str,
    full_records: &[(u64, Vec<u8>)],
    states: &BTreeMap<usize, ControlState>,
) -> ControlState {
    let dir = temp_dir(case);
    copy_journal_dir(pristine, &dir);
    let segment = segment_path(&dir);
    let mut bytes = std::fs::read(&segment).unwrap();
    let expected_prefix = match fault {
        Fault::TruncateAt(at) => {
            bytes.truncate(at);
            full_records
                .iter()
                .scan(0usize, |end, (_, payload)| {
                    *end += 16 + payload.len();
                    Some(*end)
                })
                .filter(|&end| end <= at)
                .count()
        }
        Fault::BitFlipAt(at) => {
            bytes[at] ^= 0x01;
            // The record containing the flipped byte fails its CRC;
            // everything before it survives.
            full_records
                .iter()
                .scan(0usize, |end, (_, payload)| {
                    *end += 16 + payload.len();
                    Some(*end)
                })
                .filter(|&end| end <= at)
                .count()
        }
    };
    std::fs::write(&segment, &bytes).unwrap();

    let replay = replay_dir(&dir, 0).unwrap();
    assert_eq!(
        replay.records,
        full_records[..expected_prefix],
        "{case}: replay is not the expected op-log prefix"
    );

    let server = Server::try_start(durable_config(&dir))
        .unwrap_or_else(|e| panic!("{case}: recovery failed: {e}"));
    let state = state_of(&server);
    server.shutdown();
    if let Some(expected) = states.get(&expected_prefix) {
        assert_eq!(
            &state, expected,
            "{case}: restarted control-plane state diverged from the \
             state observed after record {expected_prefix}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
    state
}

#[test]
fn crash_sweep_every_boundary_and_random_offsets_yield_a_valid_prefix() {
    let pristine = temp_dir("pristine");
    let states = build_oplog(&pristine);
    let full = replay_dir(&pristine, 0).unwrap().records;
    assert!(full.len() >= 12, "op log too short for a meaningful sweep");
    let segment = std::fs::read(segment_path(&pristine)).unwrap();
    let ends = record_boundaries(&segment);
    assert_eq!(ends.len(), full.len() + 1);
    // Every record count is an observed state except the mid-teach one
    // (PutRecord persisted, Deploy lost) — that prefix is still valid,
    // just never observable through the API while the server ran.
    assert!(states.len() >= full.len(), "missed states during the build");

    // Every record boundary: truncation here loses exactly the records
    // after it. Restart twice to pin determinism of recovery itself.
    for (i, &end) in ends.iter().enumerate() {
        let a = check_crash(
            &pristine,
            Fault::TruncateAt(end),
            &format!("boundary-{i}"),
            &full,
            &states,
        );
        let b = check_crash(
            &pristine,
            Fault::TruncateAt(end),
            &format!("boundary-{i}-again"),
            &full,
            &states,
        );
        assert_eq!(a, b, "boundary-{i}: recovery is not deterministic");
    }

    // 100 random mid-record offsets: the torn record is discarded, the
    // prefix before it survives.
    let mut rng = 0x6765_7374_6f21_u64; // deterministic seed
    for n in 0..100 {
        let at = 1 + (splitmix64(&mut rng) % (segment.len() as u64 - 1)) as usize;
        check_crash(
            &pristine,
            Fault::TruncateAt(at),
            &format!("random-{n}-at-{at}"),
            &full,
            &states,
        );
    }

    // Bit flips (silent media corruption): CRC catches the damaged
    // record; recovery keeps the records before it.
    for n in 0..25 {
        let at = (splitmix64(&mut rng) % segment.len() as u64) as usize;
        check_crash(
            &pristine,
            Fault::BitFlipAt(at),
            &format!("flip-{n}-at-{at}"),
            &full,
            &states,
        );
    }

    std::fs::remove_dir_all(&pristine).ok();
}

#[test]
fn recovery_after_torn_tail_keeps_accepting_and_persisting_ops() {
    let pristine = temp_dir("resume-pristine");
    let states = build_oplog(&pristine);
    let full = replay_dir(&pristine, 0).unwrap().records;
    let segment = segment_path(&pristine);
    let bytes = std::fs::read(&segment).unwrap();
    let ends = record_boundaries(&bytes);

    // Crash mid-way through the penultimate record...
    let dir = temp_dir("resume");
    copy_journal_dir(&pristine, &dir);
    let cut = ends[full.len() - 1] + 3; // 3 bytes into the last record
    let mut wounded = bytes.clone();
    wounded.truncate(cut);
    std::fs::write(segment_path(&dir), &wounded).unwrap();

    // ...recover, keep operating (the journal tail must have been
    // repaired so new appends land on a clean boundary)...
    let server = Server::try_start(durable_config(&dir)).unwrap();
    let recovered = state_of(&server);
    assert_eq!(&recovered, states.get(&(full.len() - 1)).unwrap());
    server.set_config("resumed", "yes").unwrap();
    server.shutdown();

    // ...and the post-crash op must survive the *next* restart too.
    let server = Server::try_start(durable_config(&dir)).unwrap();
    assert_eq!(server.get_config("resumed").as_deref(), Some("yes"));
    assert_eq!(server.deployed_versions().len(), recovered.deployed.len());
    server.shutdown();

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&pristine).ok();
}

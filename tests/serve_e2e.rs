//! End-to-end tests of the `gesto-serve` multi-session runtime:
//! teach-once → detect-everywhere, the compile-once invariant, graceful
//! drain/close under blocking backpressure, and the
//! `GestureSystem::into_server` upgrade path.

use std::sync::Arc;

use gesto::kinect::{gestures, NoiseModel, Performer, Persona, SkeletonFrame};
use gesto::serve::{BackpressurePolicy, Server, ServerConfig, SessionId};
use gesto::GestureSystem;
use parking_lot::Mutex;

fn noisy_persona() -> Persona {
    Persona::reference().with_noise(NoiseModel::realistic())
}

fn swipe_frames(seed: u64) -> Vec<SkeletonFrame> {
    let mut p = Performer::new(noisy_persona().with_seed(seed), 0);
    p.render(&gestures::swipe_right())
}

#[test]
fn teach_once_detect_everywhere() {
    let server = Server::start(ServerConfig::new().with_shards(2));
    let handle = server.handle();

    // Record which sessions fired which gesture.
    let hits: Arc<Mutex<Vec<(SessionId, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = hits.clone();
    handle.on_detection(Arc::new(move |s, d| {
        sink.lock().push((s, d.gesture.clone()));
    }));

    // Teach ONE gesture through the handle while the server is live.
    let samples: Vec<_> = (0..3).map(swipe_frames).collect();
    handle.teach("swipe_right", &samples).expect("teach");
    assert_eq!(handle.deployed(), vec!["swipe_right"]);

    // Four distinct concurrent sessions, each a fresh noisy performance,
    // pushed from four producer threads.
    let producers: Vec<_> = (0..4u64)
        .map(|user| {
            let h = handle.clone();
            std::thread::spawn(move || {
                h.push_batch(SessionId(user), swipe_frames(100 + user))
                    .expect("push");
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    handle.drain().expect("drain");

    // ≥3 distinct sessions detected the gesture taught once.
    let hits = hits.lock();
    let mut sessions: Vec<u64> = hits
        .iter()
        .filter(|(_, g)| g == "swipe_right")
        .map(|(s, _)| s.0)
        .collect();
    sessions.sort_unstable();
    sessions.dedup();
    assert!(
        sessions.len() >= 3,
        "taught once, detected on ≥3 sessions; got {sessions:?}"
    );

    // Compile-once invariant: one gesture = one compiled plan, no matter
    // how many sessions run it. The server's own counter is race-free
    // under parallel tests (the process-global compiled_plan_count() is
    // asserted in the single-threaded exp_c7_throughput binary instead).
    assert_eq!(
        server.metrics().plans_compiled,
        1,
        "teaching compiled exactly one shared plan"
    );
    server.shutdown();
}

#[test]
fn drain_and_close_lose_nothing_under_blocking_policy() {
    let server = Server::start(
        ServerConfig::new()
            .with_shards(1)
            .with_queue_capacity(1)
            .with_backpressure(BackpressurePolicy::Block),
    );
    let samples: Vec<_> = (0..3).map(swipe_frames).collect();
    server.teach("swipe_right", &samples).expect("teach");

    // A tiny queue plus many batches: the producer must block, never
    // drop. Count every frame in and every detection.
    let detections: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let sink = detections.clone();
    server.on_detection(Arc::new(move |_s, _d| *sink.lock() += 1));

    let performance = swipe_frames(42);
    let reps = 12usize;
    for _ in 0..reps {
        server
            .push_batch(SessionId(9), performance.clone())
            .expect("push");
    }
    // Closing the session must first process all its queued frames.
    server.close_session(SessionId(9)).expect("close");

    let m = server.metrics();
    assert_eq!(
        m.frames_in(),
        (reps * performance.len()) as u64,
        "blocking policy lost frames"
    );
    assert_eq!(m.shed_frames(), 0);
    assert_eq!(server.session_count(), 0);
    assert!(
        *detections.lock() >= reps as u64,
        "each full performance should detect at least once"
    );
    server.shutdown();
}

#[test]
fn into_server_moves_deployments_without_recompiling() {
    // Teach on the single-user system…
    let system = GestureSystem::new();
    let samples: Vec<_> = (0..3).map(swipe_frames).collect();
    system.teach("swipe_right", &samples).expect("teach");
    assert_eq!(system.deployed(), vec!["swipe_right"]);
    assert_eq!(system.stats().len(), 1);

    // …then upgrade to a multi-session server: no recompilation. The
    // server compiles nothing itself — the live plan moves in via
    // deploy_plan, which its compile counter (race-free, per-server)
    // does not touch.
    let server = system
        .into_server(ServerConfig::new().with_shards(2))
        .expect("into_server");
    assert_eq!(
        server.metrics().plans_compiled,
        0,
        "live plans moved, not recompiled"
    );
    assert_eq!(server.deployed(), vec!["swipe_right"]);
    assert_eq!(
        server.store().names(),
        vec!["swipe_right"],
        "gesture store carried over"
    );

    // The moved plan detects on multiple sessions.
    let hits: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = hits.clone();
    server.on_detection(Arc::new(move |s, _d| sink.lock().push(s.0)));
    // Seeds chosen to be within the learned query's recall (realistic
    // sensor noise makes detection probabilistic for arbitrary seeds).
    for user in 0..3u64 {
        server
            .push_batch(SessionId(user), swipe_frames(100 + user))
            .expect("push");
    }
    server.drain().expect("drain");
    let mut sessions = hits.lock().clone();
    sessions.sort_unstable();
    sessions.dedup();
    assert_eq!(sessions, vec![0, 1, 2]);
    server.shutdown();
}

//! Offline shim for the `proptest` crate.
//!
//! Implements the API surface `tests/properties.rs` uses — the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed`, range and regex-literal strategies, the
//! `collection` / `option` / `array` modules, and the [`proptest!`] /
//! [`prop_oneof!`] / `prop_assert*` macros — as a deterministic
//! random-testing harness.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the assertion message directly), and the RNG is seeded from the
//! test name so runs are reproducible without a persistence file.

use std::sync::Arc;

/// Deterministic split-mix style generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test identifier (deterministic runs).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index over empty range");
        (self.next_u64() % n as u64) as usize
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::*;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred` (resamples; panics with `reason`
        /// after too many consecutive rejections).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Builds recursive values: `recurse` receives a strategy for the
        /// nested value and returns the composite strategy; recursion is
        /// cut off after `depth` levels. `_desired_size` and
        /// `_expected_branch_size` are accepted for API parity.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let expanded = recurse(current).boxed();
                current = BoxedStrategy(Arc::new(WeightedPair {
                    // Prefer expansion at outer levels; leaves terminate.
                    first: leaf.clone(),
                    second: expanded,
                    second_weight: 0.7,
                }));
            }
            current
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A shared, type-erased strategy (cheap to clone).
    pub struct BoxedStrategy<T>(pub(crate) Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive samples: {}",
                self.reason
            );
        }
    }

    /// Uniform choice between strategies ([`prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// Binary weighted choice used by `prop_recursive`.
    pub(crate) struct WeightedPair<T> {
        pub(crate) first: BoxedStrategy<T>,
        pub(crate) second: BoxedStrategy<T>,
        pub(crate) second_weight: f64,
    }

    impl<T> Strategy for WeightedPair<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            if rng.unit_f64() < self.second_weight {
                self.second.sample(rng)
            } else {
                self.first.sample(rng)
            }
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+),)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
    }

    /// Regex-literal strategies, e.g. `"[a-z][a-z0-9_]{0,8}"`.
    ///
    /// Supports the subset the workspace uses: literal characters,
    /// character classes with ranges, and `{m}` / `{m,n}` repetition.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            use std::cell::RefCell;
            use std::collections::HashMap;
            use std::rc::Rc;

            // Patterns are 'static literals sampled thousands of times;
            // parse each one once per thread.
            thread_local! {
                static CACHE: RefCell<HashMap<&'static str, Rc<Pattern>>> =
                    RefCell::new(HashMap::new());
            }
            let elements = CACHE.with(|cache| {
                Rc::clone(
                    cache
                        .borrow_mut()
                        .entry(self)
                        .or_insert_with(|| Rc::new(parse_pattern(self))),
                )
            });
            let mut out = String::new();
            for (chars, min, max) in elements.iter() {
                let count = if min == max {
                    *min
                } else {
                    min + rng.index(max - min + 1)
                };
                for _ in 0..count {
                    out.push(chars[rng.index(chars.len())]);
                }
            }
            out
        }
    }

    /// A parsed pattern: (alphabet, min, max) runs.
    type Pattern = Vec<(Vec<char>, usize, usize)>;

    /// Parses the supported regex subset into (alphabet, min, max) runs.
    fn parse_pattern(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out: Vec<(Vec<char>, usize, usize)> = Vec::new();
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            for c in chars[j]..=chars[j + 2] {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    set
                }
                '\\' => {
                    i += 2;
                    vec![chars[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repetition min"),
                        hi.trim().parse().expect("repetition max"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad repetition in pattern {pattern:?}");
            out.push((alphabet, min, max));
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            len.start < len.end,
            "empty length range for collection::vec"
        );
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.index(self.len.end - self.len.start);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option<T>`: `None` in roughly a quarter of samples.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < 0.25 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `[T; 3]` sampling `element` three times.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3 { element }
    }

    /// See [`uniform3`].
    pub struct Uniform3<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; 3] {
            [
                self.element.sample(rng),
                self.element.sample(rng),
                self.element.sample(rng),
            ]
        }
    }
}

/// Per-block test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    //! Everything a property-test module needs in scope.

    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

/// Asserts inside a property test (shim: plain `assert!`, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property test (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            // Build each strategy once (they can be expensive recursive
            // trees); the per-case bindings below shadow these names.
            $(let $arg = $strategy;)+
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$arg, &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_sample() {
        let mut rng = crate::TestRng::deterministic("t");
        let s = (0..10i64).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn regex_subset_generates_matching() {
        let mut rng = crate::TestRng::deterministic("r");
        let s = "[a-c][a-c0-9_]{0,8}";
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(!v.is_empty() && v.len() <= 9, "{v:?}");
            assert!(v.chars().all(|c| matches!(c, 'a'..='c' | '0'..='9' | '_')));
        }
    }

    #[test]
    fn filter_union_recursive_compose() {
        #[derive(Debug)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0i64..100)
            .prop_filter("even only", |v| v % 2 == 0)
            .prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::deterministic("tree");
        for _ in 0..50 {
            // Depth is bounded by the recursion depth plus the leaf level.
            assert!(depth(&strat.sample(&mut rng)) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 0i64..50, ys in crate::collection::vec(0u8..10, 1..4)) {
            prop_assert!((0..50).contains(&x));
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 10).count(), 0);
        }
    }
}

//! Criterion: query parsing and generation.

use criterion::{criterion_group, criterion_main, Criterion};
use gesto_bench::learn_gesture;
use gesto_cep::{fixtures::FIG1_QUERY, parse_query};
use gesto_kinect::gestures;
use gesto_learn::query_gen::{generate_query_text, QueryStyle};
use gesto_learn::LearnerConfig;

fn bench_parse_fig1(c: &mut Criterion) {
    c.bench_function("parser/fig1_query", |b| {
        b.iter(|| parse_query(FIG1_QUERY).unwrap())
    });
}

fn bench_generate_and_parse(c: &mut Criterion) {
    let def = learn_gesture(&gestures::circle(), 3, 0, LearnerConfig::default());
    c.bench_function("querygen/circle_text", |b| {
        b.iter(|| generate_query_text(&def, QueryStyle::TransformedView))
    });
    let text = generate_query_text(&def, QueryStyle::TransformedView);
    c.bench_function("parser/generated_circle", |b| {
        b.iter(|| parse_query(&text).unwrap())
    });
}

criterion_group!(benches, bench_parse_fig1, bench_generate_and_parse);
criterion_main!(benches);

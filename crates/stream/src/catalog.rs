//! Catalog of named base streams and derived views.
//!
//! The paper declares the transformed sensor stream as a view
//! (`kinect_t`, §3.2) so detection queries can reference it by name. The
//! catalog maps stream names to schemas and view names to operator
//! factories; the CEP engine instantiates a fresh view operator per
//! deployed query chain.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::StreamError;
use crate::operator::BoxedOperator;
use crate::schema::SchemaRef;

/// Factory producing a fresh (stateful) view operator instance.
pub type ViewFactory = Arc<dyn Fn() -> BoxedOperator + Send + Sync>;

/// A derived view: input stream + operator factory + output schema.
#[derive(Clone)]
pub struct ViewDef {
    /// View name (e.g. `kinect_t`).
    pub name: String,
    /// Name of the input stream or view.
    pub input: String,
    /// Output schema of the view operator.
    pub schema: SchemaRef,
    /// Factory for the view's operator.
    pub factory: ViewFactory,
}

impl std::fmt::Debug for ViewDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewDef")
            .field("name", &self.name)
            .field("input", &self.input)
            .field("schema", &self.schema.name)
            .finish()
    }
}

/// Thread-safe registry of base streams and views.
#[derive(Default)]
pub struct Catalog {
    inner: RwLock<CatalogInner>,
}

#[derive(Default)]
struct CatalogInner {
    streams: HashMap<String, SchemaRef>,
    views: HashMap<String, ViewDef>,
    /// Memoised [`Catalog::resolve`] results, keyed by source name.
    /// Cleared whenever the stream/view topology changes; shared across
    /// every engine and server shard deploying over this catalog.
    resolved: HashMap<String, (String, Vec<ViewDef>)>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a base stream schema.
    pub fn register_stream(&self, schema: SchemaRef) -> Result<(), StreamError> {
        let mut inner = self.inner.write();
        let name = schema.name.clone();
        if inner.streams.contains_key(&name) || inner.views.contains_key(&name) {
            return Err(StreamError::DuplicateStream(name));
        }
        inner.streams.insert(name, schema);
        inner.resolved.clear();
        Ok(())
    }

    /// Registers a derived view. The input must already exist.
    pub fn register_view(&self, view: ViewDef) -> Result<(), StreamError> {
        let mut inner = self.inner.write();
        if inner.streams.contains_key(&view.name) || inner.views.contains_key(&view.name) {
            return Err(StreamError::DuplicateStream(view.name));
        }
        if !inner.streams.contains_key(&view.input) && !inner.views.contains_key(&view.input) {
            return Err(StreamError::UnknownStream(view.input));
        }
        inner.views.insert(view.name.clone(), view);
        inner.resolved.clear();
        Ok(())
    }

    /// Schema of a stream or view by name.
    pub fn schema_of(&self, name: &str) -> Result<SchemaRef, StreamError> {
        let inner = self.inner.read();
        if let Some(s) = inner.streams.get(name) {
            return Ok(s.clone());
        }
        if let Some(v) = inner.views.get(name) {
            return Ok(v.schema.clone());
        }
        Err(StreamError::UnknownStream(name.to_owned()))
    }

    /// True when `name` is a registered base stream.
    pub fn is_stream(&self, name: &str) -> bool {
        self.inner.read().streams.contains_key(name)
    }

    /// Looks up a view definition.
    pub fn view(&self, name: &str) -> Option<ViewDef> {
        self.inner.read().views.get(name).cloned()
    }

    /// Resolves the chain of view definitions from `name` down to its base
    /// stream: returns `(base_stream, views_outermost_last)`.
    ///
    /// E.g. for `kinect_t` over `kinect` this returns
    /// `("kinect", [kinect_t])`; instantiating the factories in order turns
    /// base tuples into view tuples.
    pub fn resolve(&self, name: &str) -> Result<(String, Vec<ViewDef>), StreamError> {
        if let Some(hit) = self.inner.read().resolved.get(name) {
            return Ok(hit.clone());
        }
        let result = {
            let inner = self.inner.read();
            let mut chain = Vec::new();
            let mut current = name.to_owned();
            loop {
                if inner.streams.contains_key(&current) {
                    chain.reverse();
                    break (current, chain);
                }
                match inner.views.get(&current) {
                    Some(v) => {
                        if chain.len() > inner.views.len() {
                            return Err(StreamError::Pipeline(format!(
                                "view cycle detected while resolving '{name}'"
                            )));
                        }
                        chain.push(v.clone());
                        current = v.input.clone();
                    }
                    None => return Err(StreamError::UnknownStream(current)),
                }
            }
        };
        // The topology is add-only and names are unique, so a successful
        // resolution can never be invalidated by later registrations —
        // caching it is race-free even though the walk ran under an
        // earlier read lock.
        self.inner
            .write()
            .resolved
            .insert(name.to_owned(), result.clone());
        Ok(result)
    }

    /// All registered view definitions, sorted by name (the deterministic
    /// enumeration [`crate::SharedViews`] derives its slot numbering
    /// from).
    pub fn view_defs(&self) -> Vec<ViewDef> {
        let mut out: Vec<ViewDef> = self.inner.read().views.values().cloned().collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// All registered stream and view names (streams first, then views).
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.read();
        let mut out: Vec<String> = inner.streams.keys().cloned().collect();
        out.sort();
        let mut views: Vec<String> = inner.views.keys().cloned().collect();
        views.sort();
        out.extend(views);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::MapOp;
    use crate::schema::SchemaBuilder;

    fn base() -> SchemaRef {
        SchemaBuilder::new("kinect")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap()
    }

    fn view_over(name: &str, input: &str, schema: SchemaRef) -> ViewDef {
        let out = schema.clone();
        ViewDef {
            name: name.into(),
            input: input.into(),
            schema: schema.clone(),
            factory: Arc::new(move || {
                let out = out.clone();
                Box::new(MapOp::new("id", out, move |t| Some(t.clone())))
            }),
        }
    }

    #[test]
    fn register_and_lookup() {
        let cat = Catalog::new();
        cat.register_stream(base()).unwrap();
        assert!(cat.is_stream("kinect"));
        assert_eq!(cat.schema_of("kinect").unwrap().name, "kinect");
        assert!(cat.schema_of("nope").is_err());
    }

    #[test]
    fn duplicate_rejected() {
        let cat = Catalog::new();
        cat.register_stream(base()).unwrap();
        assert!(matches!(
            cat.register_stream(base()),
            Err(StreamError::DuplicateStream(_))
        ));
    }

    #[test]
    fn view_requires_existing_input() {
        let cat = Catalog::new();
        let v = view_over("v", "missing", base());
        assert!(matches!(
            cat.register_view(v),
            Err(StreamError::UnknownStream(_))
        ));
    }

    #[test]
    fn resolve_walks_view_chain() {
        let cat = Catalog::new();
        cat.register_stream(base()).unwrap();
        let s = SchemaBuilder::new("kinect_t")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap();
        cat.register_view(view_over("kinect_t", "kinect", s.clone()))
            .unwrap();
        let s2 = SchemaBuilder::new("k2")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap();
        cat.register_view(view_over("k2", "kinect_t", s2)).unwrap();

        let (root, chain) = cat.resolve("k2").unwrap();
        assert_eq!(root, "kinect");
        let names: Vec<_> = chain.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["kinect_t", "k2"]);

        let (root, chain) = cat.resolve("kinect").unwrap();
        assert_eq!(root, "kinect");
        assert!(chain.is_empty());
    }

    #[test]
    fn resolve_cache_survives_registration() {
        let cat = Catalog::new();
        cat.register_stream(base()).unwrap();
        let s = SchemaBuilder::new("kinect_t")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap();
        cat.register_view(view_over("kinect_t", "kinect", s.clone()))
            .unwrap();

        // Warm the cache, then register more topology on top.
        let (root, chain) = cat.resolve("kinect_t").unwrap();
        assert_eq!((root.as_str(), chain.len()), ("kinect", 1));
        let s2 = SchemaBuilder::new("k2")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap();
        cat.register_view(view_over("k2", "kinect_t", s2)).unwrap();

        // Both the pre-existing and the new name resolve correctly.
        let (root, chain) = cat.resolve("kinect_t").unwrap();
        assert_eq!((root.as_str(), chain.len()), ("kinect", 1));
        let (root, chain) = cat.resolve("k2").unwrap();
        assert_eq!((root.as_str(), chain.len()), ("kinect", 2));
        // Cached entries are stable across repeated lookups.
        let (root2, chain2) = cat.resolve("k2").unwrap();
        assert_eq!(root, root2);
        assert_eq!(chain.len(), chain2.len());
        // Unknown names still fail (and are not cached as successes).
        assert!(cat.resolve("nope").is_err());
    }

    #[test]
    fn names_sorted_streams_then_views() {
        let cat = Catalog::new();
        cat.register_stream(base()).unwrap();
        let s = SchemaBuilder::new("kinect_t")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap();
        cat.register_view(view_over("kinect_t", "kinect", s))
            .unwrap();
        assert_eq!(
            cat.names(),
            vec!["kinect".to_string(), "kinect_t".to_string()]
        );
    }
}

//! Window merging across samples (§3.3.2, Fig. 4 bottom).
//!
//! Characteristic points are extracted per sample; clusters "with the
//! same sequence number" merge into minimal bounding rectangles. The
//! merge is incremental (samples can be added one at a time, the paper's
//! "further samples can be added to incrementally improve the results")
//! and flags samples that deviate too much from the windows learned so
//! far.
//!
//! Samples rarely produce exactly the same number of characteristic
//! points. The paper leaves alignment implicit; we align by normalised
//! arc length: each subsequent sample's characteristic polyline is
//! resampled at the same relative path positions as the first sample's
//! points, which preserves sequence order and spreads windows along the
//! movement.

use serde::{Deserialize, Serialize};

use crate::metric::Metric;
use crate::model::PathPoint;
use crate::window::PoseWindow;

/// A warning produced while merging a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MergeWarning {
    /// The sample's pose deviated from the current window by more than
    /// the outlier budget.
    Outlier {
        /// Index of the sample (0-based, in merge order).
        sample: usize,
        /// Pose (sequence number) where the deviation occurred.
        pose: usize,
        /// How far outside the window the point lay (mm).
        overshoot: f64,
    },
    /// The sample produced a different number of characteristic points
    /// than the model and was re-aligned.
    Realigned {
        /// Index of the sample.
        sample: usize,
        /// Points the sample produced.
        got: usize,
        /// Points the model expects.
        expected: usize,
    },
    /// The sample was rejected entirely (see
    /// [`MergeConfig::reject_outliers`]).
    Rejected {
        /// Index of the sample.
        sample: usize,
        /// Worst overshoot that triggered the rejection.
        overshoot: f64,
    },
}

/// Configuration of the incremental merge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MergeConfig {
    /// A pose point farther than `outlier_budget_mm` outside the current
    /// window raises an [`MergeWarning::Outlier`].
    pub outlier_budget_mm: f64,
    /// When true, outlier samples do not extend the windows (they are
    /// reported and dropped); when false they merge anyway (the warning
    /// still fires).
    pub reject_outliers: bool,
    /// Metric used for arc-length alignment.
    pub metric: Metric,
}

impl Default for MergeConfig {
    fn default() -> Self {
        Self {
            outlier_budget_mm: 220.0,
            reject_outliers: false,
            metric: Metric::Euclidean,
        }
    }
}

/// Incremental merge state: one growing MBR per sequence position plus
/// per-pose timing statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeState {
    config: MergeConfig,
    windows: Vec<PoseWindow>,
    /// Per-transition observed durations (ms), max over samples.
    max_transition_ms: Vec<i64>,
    samples_merged: usize,
}

impl MergeState {
    /// Creates an empty merge state.
    pub fn new(config: MergeConfig) -> Self {
        Self {
            config,
            windows: Vec::new(),
            max_transition_ms: Vec::new(),
            samples_merged: 0,
        }
    }

    /// Number of samples merged so far.
    pub fn sample_count(&self) -> usize {
        self.samples_merged
    }

    /// Current windows (empty before the first sample).
    pub fn windows(&self) -> &[PoseWindow] {
        &self.windows
    }

    /// Largest observed duration of each pose transition, ms.
    pub fn max_transition_ms(&self) -> &[i64] {
        &self.max_transition_ms
    }

    /// Merges one sample's characteristic points; returns warnings.
    ///
    /// The first sample defines the window count; later samples are
    /// aligned to it (see module docs).
    pub fn add_sample(&mut self, points: &[PathPoint]) -> Vec<MergeWarning> {
        let mut warnings = Vec::new();
        if points.is_empty() {
            return warnings;
        }
        let sample_idx = self.samples_merged;

        if self.windows.is_empty() {
            self.windows = points
                .iter()
                .map(|p| PoseWindow::point(p.feat.clone()))
                .collect();
            self.max_transition_ms = points
                .windows(2)
                .map(|w| (w[1].ts - w[0].ts).max(1))
                .collect();
            self.samples_merged = 1;
            return warnings;
        }

        let expected = self.windows.len();
        let aligned: Vec<PathPoint> = if points.len() == expected {
            points.to_vec()
        } else {
            warnings.push(MergeWarning::Realigned {
                sample: sample_idx,
                got: points.len(),
                expected,
            });
            resample_to(points, expected, self.config.metric)
        };

        // Outlier check against the current windows.
        let mut worst = 0.0f64;
        for (pose, p) in aligned.iter().enumerate() {
            let overshoot = self.windows[pose].max_overshoot(&p.feat);
            if overshoot > self.config.outlier_budget_mm {
                warnings.push(MergeWarning::Outlier {
                    sample: sample_idx,
                    pose,
                    overshoot,
                });
            }
            worst = worst.max(overshoot);
        }
        if self.config.reject_outliers && worst > self.config.outlier_budget_mm {
            warnings.push(MergeWarning::Rejected {
                sample: sample_idx,
                overshoot: worst,
            });
            return warnings;
        }

        // MBR extension per sequence number.
        for (pose, p) in aligned.iter().enumerate() {
            self.windows[pose].extend_to(&p.feat);
        }
        for (i, w) in aligned.windows(2).enumerate() {
            let dt = (w[1].ts - w[0].ts).max(1);
            if dt > self.max_transition_ms[i] {
                self.max_transition_ms[i] = dt;
            }
        }
        self.samples_merged += 1;
        warnings
    }
}

/// Resamples a characteristic polyline to exactly `n` points at uniform
/// relative arc-length positions (timestamps interpolated linearly).
pub fn resample_to(points: &[PathPoint], n: usize, metric: Metric) -> Vec<PathPoint> {
    assert!(n >= 1);
    if points.is_empty() {
        return Vec::new();
    }
    if points.len() == 1 || n == 1 {
        return vec![points[0].clone()];
    }
    // Cumulative arc length.
    let mut cum = Vec::with_capacity(points.len());
    cum.push(0.0);
    for w in points.windows(2) {
        let d = metric.distance(&w[0].feat, &w[1].feat);
        cum.push(cum.last().unwrap() + d);
    }
    let total = *cum.last().unwrap();
    if total <= f64::EPSILON {
        // Degenerate: all points coincide.
        return (0..n).map(|_| points[0].clone()).collect();
    }

    let mut out = Vec::with_capacity(n);
    let mut seg = 0usize;
    for k in 0..n {
        let target = total * k as f64 / (n - 1) as f64;
        while seg + 1 < cum.len() - 1 && cum[seg + 1] < target {
            seg += 1;
        }
        let span = cum[seg + 1] - cum[seg];
        let t = if span > 0.0 {
            ((target - cum[seg]) / span).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let a = &points[seg];
        let b = &points[seg + 1];
        let feat = a
            .feat
            .iter()
            .zip(&b.feat)
            .map(|(x, y)| x + (y - x) * t)
            .collect();
        let ts = a.ts + ((b.ts - a.ts) as f64 * t).round() as i64;
        out.push(PathPoint::new(ts, feat));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(ts: i64, x: f64, y: f64) -> PathPoint {
        PathPoint::new(ts, vec![x, y, 0.0])
    }

    fn sample(offsets: &[(f64, f64)]) -> Vec<PathPoint> {
        offsets
            .iter()
            .enumerate()
            .map(|(i, (x, y))| pt(i as i64 * 300, *x, *y))
            .collect()
    }

    #[test]
    fn first_sample_defines_point_windows() {
        let mut m = MergeState::new(MergeConfig::default());
        let warns = m.add_sample(&sample(&[(0.0, 0.0), (400.0, 100.0), (800.0, 0.0)]));
        assert!(warns.is_empty());
        assert_eq!(m.windows().len(), 3);
        assert_eq!(m.windows()[1].center, vec![400.0, 100.0, 0.0]);
        assert_eq!(m.windows()[1].width, vec![0.0, 0.0, 0.0]);
        assert_eq!(m.max_transition_ms(), &[300, 300]);
    }

    #[test]
    fn second_sample_grows_mbrs() {
        let mut m = MergeState::new(MergeConfig::default());
        m.add_sample(&sample(&[(0.0, 0.0), (400.0, 100.0), (800.0, 0.0)]));
        let warns = m.add_sample(&sample(&[(20.0, -10.0), (380.0, 120.0), (820.0, 10.0)]));
        assert!(warns.is_empty(), "{warns:?}");
        assert_eq!(m.sample_count(), 2);
        let w0 = &m.windows()[0];
        assert_eq!(w0.center[0], 10.0);
        assert_eq!(w0.width[0], 10.0);
        assert!(w0.contains(&[0.0, 0.0, 0.0]) && w0.contains(&[20.0, -10.0, 0.0]));
    }

    #[test]
    fn mbr_contains_all_merged_points() {
        let mut m = MergeState::new(MergeConfig::default());
        let samples = [
            sample(&[(0.0, 0.0), (400.0, 100.0), (800.0, 0.0)]),
            sample(&[(30.0, 5.0), (370.0, 90.0), (790.0, -20.0)]),
            sample(&[(-25.0, 12.0), (420.0, 80.0), (830.0, 15.0)]),
        ];
        for s in &samples {
            m.add_sample(s);
        }
        for s in &samples {
            for (i, p) in s.iter().enumerate() {
                assert!(m.windows()[i].contains(&p.feat), "pose {i} point {p:?}");
            }
        }
    }

    #[test]
    fn outlier_warning_fires() {
        let mut m = MergeState::new(MergeConfig {
            outlier_budget_mm: 100.0,
            ..Default::default()
        });
        m.add_sample(&sample(&[(0.0, 0.0), (400.0, 0.0)]));
        let warns = m.add_sample(&sample(&[(0.0, 0.0), (900.0, 0.0)]));
        assert!(
            warns.iter().any(|w| matches!(
                w,
                MergeWarning::Outlier { pose: 1, overshoot, .. } if *overshoot > 400.0
            )),
            "{warns:?}"
        );
        // Merged anyway (reject_outliers = false).
        assert!(m.windows()[1].contains(&[900.0, 0.0, 0.0]));
    }

    #[test]
    fn reject_outliers_drops_sample() {
        let mut m = MergeState::new(MergeConfig {
            outlier_budget_mm: 100.0,
            reject_outliers: true,
            ..Default::default()
        });
        m.add_sample(&sample(&[(0.0, 0.0), (400.0, 0.0)]));
        let warns = m.add_sample(&sample(&[(0.0, 0.0), (900.0, 0.0)]));
        assert!(warns
            .iter()
            .any(|w| matches!(w, MergeWarning::Rejected { .. })));
        assert_eq!(m.sample_count(), 1, "rejected sample not counted");
        assert!(!m.windows()[1].contains(&[900.0, 0.0, 0.0]));
    }

    #[test]
    fn differing_point_counts_realign() {
        let mut m = MergeState::new(MergeConfig::default());
        m.add_sample(&sample(&[(0.0, 0.0), (400.0, 0.0), (800.0, 0.0)]));
        // 5-point second sample along the same line.
        let warns = m.add_sample(&sample(&[
            (0.0, 0.0),
            (200.0, 0.0),
            (400.0, 0.0),
            (600.0, 0.0),
            (800.0, 0.0),
        ]));
        assert!(warns.iter().any(|w| matches!(
            w,
            MergeWarning::Realigned {
                got: 5,
                expected: 3,
                ..
            }
        )));
        assert_eq!(m.windows().len(), 3, "window count stays fixed");
        // Aligned at 0 / 400 / 800: windows stay tight.
        for w in m.windows() {
            assert!(w.width[0] < 1e-9, "{w:?}");
        }
    }

    #[test]
    fn transition_times_take_max() {
        let mut m = MergeState::new(MergeConfig::default());
        m.add_sample(&[pt(0, 0.0, 0.0), pt(250, 400.0, 0.0)]);
        m.add_sample(&[pt(0, 0.0, 0.0), pt(700, 400.0, 0.0)]);
        assert_eq!(m.max_transition_ms(), &[700]);
        m.add_sample(&[pt(0, 0.0, 0.0), pt(100, 400.0, 0.0)]);
        assert_eq!(m.max_transition_ms(), &[700], "max is sticky");
    }

    #[test]
    fn empty_sample_ignored() {
        let mut m = MergeState::new(MergeConfig::default());
        assert!(m.add_sample(&[]).is_empty());
        assert_eq!(m.sample_count(), 0);
    }

    #[test]
    fn resample_preserves_endpoints_and_order() {
        let pts = sample(&[(0.0, 0.0), (100.0, 0.0), (100.0, 300.0)]);
        let r = resample_to(&pts, 5, Metric::Euclidean);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0].feat, pts[0].feat);
        assert_eq!(r[4].feat, pts[2].feat);
        // Uniform arc positions: total 400 -> targets 0,100,200,300,400.
        assert_eq!(r[1].feat, vec![100.0, 0.0, 0.0]);
        assert!((r[2].feat[1] - 100.0).abs() < 1e-9);
        for w in r.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn resample_degenerate_cases() {
        let one = vec![pt(0, 1.0, 1.0)];
        assert_eq!(resample_to(&one, 4, Metric::Euclidean).len(), 1);
        let same = vec![pt(0, 1.0, 1.0), pt(10, 1.0, 1.0)];
        let r = resample_to(&same, 3, Metric::Euclidean);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|p| p.feat == vec![1.0, 1.0, 0.0]));
        assert!(resample_to(&[], 3, Metric::Euclidean).is_empty());
    }
}

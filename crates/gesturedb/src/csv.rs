//! Semicolon-CSV import/export of gesture samples.
//!
//! The paper's Fig. 1 prints recorded samples as semicolon-separated
//! rows (`torsoX;torsoY;torsoZ;rHandX;rHandY;rHandZ`). This module reads
//! and writes that format generically: a header row names the feature
//! dimensions, an optional leading `ts` column carries stream time.

use gesto_learn::{GestureSample, PathPoint};

use crate::error::DbError;

/// Exports a sample as semicolon CSV with a header.
///
/// `dim_names` must match the sample's feature dimensionality; a `ts`
/// column is always included.
pub fn export_sample(sample: &GestureSample, dim_names: &[String]) -> String {
    let mut out = String::new();
    out.push_str("ts");
    for n in dim_names {
        out.push(';');
        out.push_str(n);
    }
    out.push('\n');
    for p in &sample.points {
        out.push_str(&p.ts.to_string());
        for v in &p.feat {
            out.push(';');
            out.push_str(&format!("{v:.2}"));
        }
        out.push('\n');
    }
    out
}

/// Imports a sample from semicolon CSV.
///
/// Accepts an optional header row (detected by non-numeric first field).
/// A leading `ts` column is used when the header names it (or when
/// headerless rows have `dims + 1` columns); otherwise timestamps are
/// synthesised at 30 Hz.
pub fn import_sample(csv: &str, dims: usize) -> Result<GestureSample, DbError> {
    let mut points = Vec::new();
    let mut lines = csv.lines().enumerate().peekable();

    // Header detection.
    let mut has_ts_column = None;
    if let Some((_, first)) = lines.peek() {
        let first_field = first.split(';').next().unwrap_or("").trim();
        if !first_field.is_empty() && first_field.parse::<f64>().is_err() {
            has_ts_column = Some(first_field.eq_ignore_ascii_case("ts"));
            lines.next();
        }
    }

    let mut frame_no: u64 = 0;
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(';').map(str::trim).collect();
        let with_ts = match has_ts_column {
            Some(b) => b,
            None => fields.len() == dims + 1,
        };
        let expected = if with_ts { dims + 1 } else { dims };
        if fields.len() != expected {
            return Err(DbError::Csv {
                line: idx + 1,
                message: format!("expected {expected} fields, found {}", fields.len()),
            });
        }
        let parse = |s: &str| -> Result<f64, DbError> {
            s.parse::<f64>().map_err(|_| DbError::Csv {
                line: idx + 1,
                message: format!("invalid number '{s}'"),
            })
        };
        let (ts, feat_fields) = if with_ts {
            (parse(fields[0])? as i64, &fields[1..])
        } else {
            // Synthesised 30 Hz timestamps.
            let ts = (frame_no as f64 * 1000.0 / 30.0).round() as i64;
            (ts, &fields[..])
        };
        let feat = feat_fields
            .iter()
            .map(|f| parse(f))
            .collect::<Result<Vec<f64>, _>>()?;
        points.push(PathPoint::new(ts, feat));
        frame_no += 1;
    }
    Ok(GestureSample { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GestureSample {
        GestureSample {
            points: vec![
                PathPoint::new(0, vec![1.0, 2.0, 3.0]),
                PathPoint::new(33, vec![4.5, 5.25, -6.0]),
            ],
        }
    }

    #[test]
    fn export_import_roundtrip() {
        let names = vec!["rHand_x".into(), "rHand_y".into(), "rHand_z".into()];
        let csv = export_sample(&sample(), &names);
        assert!(csv.starts_with("ts;rHand_x;rHand_y;rHand_z\n"), "{csv}");
        let back = import_sample(&csv, 3).unwrap();
        assert_eq!(back.points.len(), 2);
        assert_eq!(back.points[1].ts, 33);
        assert!((back.points[1].feat[1] - 5.25).abs() < 1e-9);
    }

    #[test]
    fn paper_style_headerless_rows() {
        // Fig. 1 style: no header, no ts, 6 dims.
        let csv = "45.21;166.36;1961.27;-38.80;238.82;1822.28\n45.52;165.01;1961.72;-34.19;242.18;1809.85\n";
        let s = import_sample(csv, 6).unwrap();
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[0].ts, 0, "synthesised timestamps");
        assert_eq!(s.points[1].ts, 33);
        assert_eq!(s.points[0].feat[0], 45.21);
    }

    #[test]
    fn header_without_ts() {
        let csv = "x;y\n1;2\n3;4\n";
        let s = import_sample(csv, 2).unwrap();
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.points[1].ts, 33);
        assert_eq!(s.points[1].feat, vec![3.0, 4.0]);
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "1;2\n\n3;4\n";
        let s = import_sample(csv, 2).unwrap();
        assert_eq!(s.points.len(), 2);
    }

    #[test]
    fn field_count_mismatch_reports_line() {
        let csv = "1;2;3\n1;2\n";
        let err = import_sample(csv, 3).unwrap_err();
        match err {
            DbError::Csv { line, .. } => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_number_reports_line() {
        let csv = "ts;x\n0;1.0\n5;abc\n";
        let err = import_sample(csv, 1).unwrap_err();
        match err {
            DbError::Csv { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("abc"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_input_is_empty_sample() {
        assert!(import_sample("", 3).unwrap().points.is_empty());
    }
}

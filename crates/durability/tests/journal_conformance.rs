//! On-disk format conformance: the journal record and checkpoint
//! framing pinned against **hand-written golden bytes** (CRCs computed
//! with an independent CRC-32/ISO-HDLC implementation), in the style of
//! gesto-serve's `protocol_conformance`. If any of these tests fail,
//! the on-disk format changed: existing journals would stop replaying.
//! Bump the formats deliberately (new magic / segment naming), never
//! silently.

use gesto_durability::checkpoint::{save_checkpoint, CHECKPOINT_HEADER_LEN, CHECKPOINT_MAGIC};
use gesto_durability::journal::{encode_record, RECORD_HEADER_LEN};
use gesto_durability::{crc32, load_newest_checkpoint, replay_dir, FsyncPolicy, Journal};
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gesto-conform-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Record 1: seq=1, payload `teach swipe_right` (17 bytes).
/// CRC-32(seq_le ++ payload) = 0x2623968B, stored LE.
const RECORD_1: &[u8] = &[
    0x11, 0x00, 0x00, 0x00, // payload_len = 17
    0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // seq = 1
    0x8B, 0x96, 0x23, 0x26, // crc32 = 0x2623968B
    b't', b'e', b'a', b'c', b'h', b' ', b's', b'w', b'i', b'p', b'e', b'_', b'r', b'i', b'g', b'h',
    b't',
];

/// Record 2: seq=2, payload `deploy v2` (9 bytes). CRC = 0x93A3C69D.
const RECORD_2: &[u8] = &[
    0x09, 0x00, 0x00, 0x00, // payload_len = 9
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // seq = 2
    0x9D, 0xC6, 0xA3, 0x93, // crc32 = 0x93A3C69D
    b'd', b'e', b'p', b'l', b'o', b'y', b' ', b'v', b'2',
];

/// Checkpoint: seq=2, payload `{"gestures":1}` (14 bytes).
/// CRC-32(seq_le ++ len_le ++ payload) = 0xAAA4D5BD.
const CHECKPOINT: &[u8] = &[
    b'G', b'C', b'K', b'1', // magic
    0xBD, 0xD5, 0xA4, 0xAA, // crc32 = 0xAAA4D5BD
    0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // seq = 2
    0x0E, 0x00, 0x00, 0x00, // payload_len = 14
    b'{', b'"', b'g', b'e', b's', b't', b'u', b'r', b'e', b's', b'"', b':', b'1', b'}',
];

#[test]
fn crc32_is_iso_hdlc() {
    // The check value every CRC-32/ISO-HDLC implementation must produce.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
}

#[test]
fn record_encoding_matches_golden_bytes() {
    let mut out = Vec::new();
    encode_record(1, b"teach swipe_right", &mut out);
    assert_eq!(out, RECORD_1);
    out.clear();
    encode_record(2, b"deploy v2", &mut out);
    assert_eq!(out, RECORD_2);
    assert_eq!(RECORD_HEADER_LEN, 16);
}

#[test]
fn journal_writes_golden_bytes_to_disk() {
    let dir = scratch_dir("journal-golden");
    let (mut j, _) = Journal::open(&dir, FsyncPolicy::Always).unwrap();
    j.append(b"teach swipe_right").unwrap();
    j.append(b"deploy v2").unwrap();
    drop(j);

    let segment = dir.join(format!("wal-{:020}.log", 1));
    let bytes = std::fs::read(&segment).expect("segment file exists under its documented name");
    let expected: Vec<u8> = [RECORD_1, RECORD_2].concat();
    assert_eq!(bytes, expected, "on-disk journal bytes match the spec");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn golden_bytes_replay_without_the_writer() {
    // A journal written by any conforming implementation replays: write
    // the golden bytes directly, no Journal involved.
    let dir = scratch_dir("journal-replay");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join(format!("wal-{:020}.log", 1)),
        [RECORD_1, RECORD_2].concat(),
    )
    .unwrap();
    let replay = replay_dir(&dir, 0).unwrap();
    assert_eq!(
        replay.records,
        vec![
            (1, b"teach swipe_right".to_vec()),
            (2, b"deploy v2".to_vec()),
        ]
    );
    assert_eq!(replay.truncated_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_writes_golden_bytes_to_disk() {
    let dir = scratch_dir("ckpt-golden");
    let path = save_checkpoint(&dir, 2, b"{\"gestures\":1}").unwrap();
    assert_eq!(
        path.file_name().unwrap().to_string_lossy(),
        format!("ckpt-{:020}.ckpt", 2),
        "checkpoint file naming is part of the format"
    );
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(bytes, CHECKPOINT, "on-disk checkpoint bytes match the spec");
    assert_eq!(CHECKPOINT_HEADER_LEN, 20);
    assert_eq!(CHECKPOINT_MAGIC, b"GCK1");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn golden_checkpoint_loads_without_the_writer() {
    let dir = scratch_dir("ckpt-load");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(format!("ckpt-{:020}.ckpt", 2)), CHECKPOINT).unwrap();
    let loaded = load_newest_checkpoint(&dir).unwrap().unwrap();
    assert_eq!(loaded.seq, 2);
    assert_eq!(loaded.payload, b"{\"gestures\":1}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_single_byte_corruption_of_a_record_is_rejected() {
    // Exhaustive: flip one bit in every byte of a two-record journal;
    // replay must never return a record whose bytes were touched, and
    // must never panic.
    let golden: Vec<u8> = [RECORD_1, RECORD_2].concat();
    let dir = scratch_dir("bitflip-sweep");
    std::fs::create_dir_all(&dir).unwrap();
    let seg = dir.join(format!("wal-{:020}.log", 1));
    for i in 0..golden.len() {
        let mut corrupted = golden.clone();
        corrupted[i] ^= 0x01;
        std::fs::write(&seg, &corrupted).unwrap();
        let replay = replay_dir(&dir, 0).unwrap();
        let expect_valid = if i < RECORD_1.len() { 0 } else { 1 };
        assert_eq!(
            replay.records.len(),
            expect_valid,
            "byte {i}: corruption must truncate from the corrupt record"
        );
        assert!(replay.truncated_bytes > 0, "byte {i}: truncation counted");
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! The durable control plane: journaled operations and checkpoint
//! payloads.
//!
//! Every control-plane mutation of a durable server — teaching a
//! gesture, deploying or undeploying a plan, setting a config key — is
//! serialised as one [`ControlOp`] (JSON) and appended to the
//! write-ahead journal **before** it is acknowledged to the caller.
//! Recovery ([`crate::Server::try_with_parts`]) loads the newest valid
//! checkpoint, replays the journal tail in sequence order, recompiles
//! each surviving plan exactly once, and broadcasts it to the shards —
//! a restarted server detects bit-identically to one that never went
//! down. See `docs/DURABILITY.md` for the full recovery algorithm and
//! crash-consistency argument.
//!
//! Data-plane frames are **never** journaled: the control plane changes
//! rarely, skeleton streams are ephemeral, and keeping the journal off
//! the hot path is what makes durability free at steady state.

use std::collections::{BTreeMap, HashMap};

use gesto_db::{GestureRecord, StoreSnapshot};
use gesto_durability::Journal;
use serde::{Deserialize, Serialize};

use crate::config::DurabilityConfig;

/// One journaled control-plane operation. The JSON encoding of this
/// enum (externally tagged: `{"Deploy":{...}}`) is the journal's
/// payload format; changing a variant's shape is a journal format
/// change and must be versioned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlOp {
    /// A gesture record was stored (teach: samples + definition +
    /// query text). Replay restores the store entry verbatim — no
    /// re-learning on recovery.
    PutRecord {
        /// Gesture name.
        name: String,
        /// The full stored record.
        record: GestureRecord,
    },
    /// A query was deployed as version `version` of `name`. Replay
    /// recompiles `text` (compile-once: the newest surviving version
    /// per name is compiled, earlier ones are superseded in-memory).
    Deploy {
        /// Gesture (query) name.
        name: String,
        /// Canonical query text (parsable by `gesto_cep::parse_query`).
        text: String,
        /// Monotone version of this name, starting at 1.
        version: u32,
    },
    /// A plan was removed.
    Undeploy {
        /// Gesture (query) name.
        name: String,
    },
    /// A durable config key was set.
    SetConfig {
        /// Key.
        key: String,
        /// Value.
        value: String,
    },
}

/// One deployed plan's durable identity inside a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanMeta {
    /// Gesture (query) name.
    pub name: String,
    /// Canonical query text.
    pub text: String,
    /// Deployed version.
    pub version: u32,
}

/// The checkpoint payload: full control-plane state as of one journal
/// sequence number. Serialised as JSON inside the CRC-framed checkpoint
/// file (`gesto_durability::checkpoint`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPayload {
    /// The gesture store (samples, definitions, query texts).
    pub store: StoreSnapshot,
    /// Deployed plans, sorted by name (deterministic payload bytes).
    pub plans: Vec<PlanMeta>,
    /// Durable config keys.
    pub config: BTreeMap<String, String>,
}

/// Live state of a durable server: the open journal plus checkpoint
/// pacing. Lives behind `Mutex<Option<_>>` on the server core — `None`
/// when durability is off, and the mutex serialises control-plane ops
/// (which are rare) without touching the data path.
pub(crate) struct DurableState {
    /// The open write-ahead journal.
    pub journal: Journal,
    /// The durability configuration (dir, fsync, checkpoint pacing).
    pub cfg: DurabilityConfig,
    /// Ops journaled since the last checkpoint.
    pub ops_since_ckpt: u64,
}

/// Renders the journal payload of one op.
pub(crate) fn encode_op(op: &ControlOp) -> Result<String, crate::ServeError> {
    serde_json::to_string(op)
        .map_err(|e| crate::ServeError::Durability(format!("encoding control op: {e}")))
}

/// Parses one journal payload.
pub(crate) fn decode_op(payload: &[u8]) -> Result<ControlOp, crate::ServeError> {
    let text = std::str::from_utf8(payload).map_err(|_| {
        crate::ServeError::Durability("journal payload is not UTF-8 JSON".to_owned())
    })?;
    serde_json::from_str(text)
        .map_err(|e| crate::ServeError::Durability(format!("decoding control op: {e}")))
}

/// Builds the (deterministic) checkpoint payload JSON from live state.
pub(crate) fn encode_checkpoint(
    store: StoreSnapshot,
    plans: &HashMap<String, crate::server::DeployedPlan>,
    config: BTreeMap<String, String>,
) -> Result<String, crate::ServeError> {
    let mut metas: Vec<PlanMeta> = plans
        .iter()
        .map(|(name, d)| PlanMeta {
            name: name.clone(),
            text: d.plan.query().to_query_text(),
            version: d.version,
        })
        .collect();
    metas.sort_by(|a, b| a.name.cmp(&b.name));
    serde_json::to_string(&CheckpointPayload {
        store,
        plans: metas,
        config,
    })
    .map_err(|e| crate::ServeError::Durability(format!("encoding checkpoint: {e}")))
}

/// Parses a checkpoint payload.
pub(crate) fn decode_checkpoint(payload: &[u8]) -> Result<CheckpointPayload, crate::ServeError> {
    let text = std::str::from_utf8(payload).map_err(|_| {
        crate::ServeError::Durability("checkpoint payload is not UTF-8 JSON".to_owned())
    })?;
    serde_json::from_str(text)
        .map_err(|e| crate::ServeError::Durability(format!("decoding checkpoint: {e}")))
}

/// Maps an I/O error of the durability layer into a [`crate::ServeError`].
pub(crate) fn io_err(context: &str, e: std::io::Error) -> crate::ServeError {
    crate::ServeError::Durability(format!("{context}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_op_json_roundtrip() {
        let ops = vec![
            ControlOp::PutRecord {
                name: "swipe".into(),
                record: GestureRecord::default(),
            },
            ControlOp::Deploy {
                name: "swipe".into(),
                text: "SELECT \"swipe\"\nMATCHING kinect(x > 1);".into(),
                version: 3,
            },
            ControlOp::Undeploy {
                name: "swipe".into(),
            },
            ControlOp::SetConfig {
                key: "mode".into(),
                value: "demo".into(),
            },
        ];
        for op in ops {
            let json = encode_op(&op).unwrap();
            let back = decode_op(json.as_bytes()).unwrap();
            assert_eq!(back, op);
        }
    }

    #[test]
    fn bad_payloads_are_errors_not_panics() {
        assert!(decode_op(b"\xFF\xFE").is_err());
        assert!(decode_op(b"{\"Nope\":{}}").is_err());
        assert!(decode_checkpoint(b"not json").is_err());
    }
}

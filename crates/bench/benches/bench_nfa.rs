//! NFA stepping A/B/C: per-tuple [`Nfa::advance`] vs batched
//! [`Nfa::advance_batch_into`] vs columnar
//! [`Nfa::advance_block_into`] (batched + vectorized predicate
//! pre-pass) at 1/4/16 deployed gestures, plus allocation-count
//! assertions (via a counting global allocator) proving the batched hot
//! loop performs **zero** heap allocations at steady state — when
//! nothing matches, under seed/expire churn, with the columnar
//! block build + predicate pre-pass in the loop, and with the kernel
//! stage timer sampling every batch (the telemetry overhead guard,
//! also timed as an on/off A/B leg).
//!
//! ```sh
//! cargo bench -p gesto-bench --bench bench_nfa -- --json BENCH_nfa.json
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gesto_cep::{parse_pattern, FunctionRegistry, MatchScratch, Nfa, SingleSchema};
use gesto_stream::{ColumnBlock, SchemaBuilder, SchemaRef, Tuple, Value};

/// Counts every heap allocation (alloc/realloc/alloc_zeroed) so the
/// bench can assert the hot loop's no-allocation contract.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const SOURCE: &str = "kinect_t";

fn schema() -> SchemaRef {
    SchemaBuilder::new(SOURCE)
        .timestamp("ts")
        .float("x")
        .float("y")
        .float("z")
        .build()
        .unwrap()
}

/// Pose centre of gesture `g`, step `k`, coordinate offset `k + axis`.
fn centre(g: usize, k: usize) -> f64 {
    ((11 + g * 13 + k * 29) % 90) as f64
}

/// A learned-shape 3-step gesture: each step a conjunction of three
/// window bands, consecutive steps within 1 second. Gesture `g` gets its
/// own pose centres so deployed gestures do not fire in lockstep.
fn gesture_pattern(g: usize) -> String {
    let step = |k: usize| {
        format!(
            "{SOURCE}(abs(x - {}) < 12 and abs(y - {}) < 12 and abs(z - {}) < 12)",
            centre(g, k),
            centre(g, k + 1),
            centre(g, k + 2)
        )
    };
    format!(
        "{} -> {} -> {} within 1 seconds select first consume all",
        step(0),
        step(1),
        step(2)
    )
}

fn compile_gestures(n: usize) -> Vec<Nfa> {
    let funcs = FunctionRegistry::with_builtins();
    let resolver = SingleSchema(schema());
    (0..n)
        .map(|i| {
            Nfa::compile(
                &parse_pattern(&gesture_pattern(i)).unwrap(),
                &resolver,
                &funcs,
            )
            .unwrap()
        })
        .collect()
}

/// A pseudo-random 30 fps pose stream over the band range — seeding and
/// advancing runs constantly — with a deliberate performance of one
/// gesture (cycling through the deployed set) every 40 frames, so the
/// stream also completes matches.
fn workload(frames: usize) -> Vec<Tuple> {
    let s = schema();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 100) as f64
    };
    (0..frames)
        .map(|i| {
            let (x, y, z) = if i % 40 < 3 {
                // Pose k of a deliberate performance of gesture g.
                let (g, k) = ((i / 40) % 16, i % 40);
                (centre(g, k), centre(g, k + 1), centre(g, k + 2))
            } else {
                (next(), next(), next())
            };
            Tuple::new_unchecked(
                s.clone(),
                vec![
                    Value::Timestamp(i as i64 * 33),
                    Value::Float(x),
                    Value::Float(y),
                    Value::Float(z),
                ],
            )
        })
        .collect()
}

/// A stream that matches no step of any gesture (poses far outside every
/// band): the pure no-match steady state.
fn idle_workload(frames: usize) -> Vec<Tuple> {
    let s = schema();
    (0..frames)
        .map(|i| {
            Tuple::new_unchecked(
                s.clone(),
                vec![
                    Value::Timestamp(i as i64 * 33),
                    Value::Float(500.0),
                    Value::Float(500.0),
                    Value::Float(500.0),
                ],
            )
        })
        .collect()
}

/// Mean ns/iter of `f` over an adaptive iteration count (~0.4 s).
fn measure(mut f: impl FnMut()) -> f64 {
    // Warmup sizes the loop and warms caches/buffers.
    let warm = Instant::now();
    let mut warm_iters = 0u32;
    while warm.elapsed().as_millis() < 60 || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    let per_iter = warm.elapsed().as_nanos() / u128::from(warm_iters);
    let iters = (400_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

struct AbResult {
    gestures: usize,
    per_tuple_fps: f64,
    batched_fps: f64,
    block_fps: f64,
    speedup: f64,
    block_speedup: f64,
    matches: u64,
}

/// Per-tuple vs batched vs columnar stepping of `n` gestures over the
/// same stream.
fn ab_advance(n: usize, tuples: &[Tuple]) -> AbResult {
    let frames = tuples.len() as f64;

    // Per-tuple path: every tuple steps every NFA, interleaved — the
    // shape of the seed engine loop.
    let mut nfas = compile_gestures(n);
    let mut matches = 0u64;
    let per_tuple_ns = measure(|| {
        matches = 0;
        for t in tuples {
            for nfa in nfas.iter_mut() {
                matches += nfa.advance(SOURCE, t).unwrap().len() as u64;
            }
        }
        for nfa in nfas.iter_mut() {
            nfa.reset();
        }
    });

    // Batched path: every NFA steps the whole batch in one call — the
    // shape of `PlanInstance::push_batch_shared` without blocks.
    let mut nfas = compile_gestures(n);
    let mut scratch = MatchScratch::new();
    let mut batched_matches = 0u64;
    let batched_ns = measure(|| {
        batched_matches = 0;
        for nfa in nfas.iter_mut() {
            nfa.advance_batch_into(SOURCE, tuples, &mut scratch)
                .unwrap();
            batched_matches += scratch.len() as u64;
            scratch.clear();
            nfa.reset();
        }
    });

    // Columnar path: one block build per batch (amortised across every
    // deployed gesture) + the vectorized predicate pre-pass.
    let mut nfas = compile_gestures(n);
    let mut block = ColumnBlock::new();
    let mut block_matches = 0u64;
    let block_ns = measure(|| {
        block_matches = 0;
        block.fill_from_tuples(tuples);
        for nfa in nfas.iter_mut() {
            nfa.advance_block_into(SOURCE, tuples, Some(&block), &mut scratch)
                .unwrap();
            block_matches += scratch.len() as u64;
            scratch.clear();
            nfa.reset();
        }
    });

    assert_eq!(matches, batched_matches, "paths must agree on detections");
    assert_eq!(matches, block_matches, "block path must agree too");
    AbResult {
        gestures: n,
        per_tuple_fps: frames / (per_tuple_ns / 1e9),
        batched_fps: frames / (batched_ns / 1e9),
        block_fps: frames / (block_ns / 1e9),
        speedup: per_tuple_ns / batched_ns,
        block_speedup: per_tuple_ns / block_ns,
        matches,
    }
}

/// Asserts the batched hot loop allocates nothing at steady state.
fn assert_zero_allocations() {
    // (a) Pure no-match: nothing ever seeds.
    let tuples = idle_workload(512);
    let mut nfas = compile_gestures(4);
    let mut scratch = MatchScratch::new();
    for nfa in nfas.iter_mut() {
        nfa.advance_batch_into(SOURCE, &tuples, &mut scratch)
            .unwrap();
    }
    let before = allocations();
    for _ in 0..16 {
        for nfa in nfas.iter_mut() {
            nfa.advance_batch_into(SOURCE, &tuples, &mut scratch)
                .unwrap();
        }
    }
    let no_match_allocs = allocations() - before;
    assert_eq!(scratch.len(), 0, "idle stream must not match");
    assert_eq!(
        no_match_allocs, 0,
        "no-match steady state must not allocate"
    );
    println!("alloc-check: no-match steady state      0 allocations ✓");

    // (b) Seed/expire/complete churn: after one warmup pass the slab,
    // arena and scratch capacities are in place — steady state stays
    // allocation-free even while runs seed, expire and complete.
    let tuples = workload(512);
    let mut nfas = compile_gestures(4);
    let mut matches = 0u64;
    for _ in 0..2 {
        matches = 0;
        for nfa in nfas.iter_mut() {
            nfa.advance_batch_into(SOURCE, &tuples, &mut scratch)
                .unwrap();
            matches += scratch.len() as u64;
            scratch.clear();
            nfa.reset();
        }
    }
    let before = allocations();
    for _ in 0..16 {
        for nfa in nfas.iter_mut() {
            nfa.advance_batch_into(SOURCE, &tuples, &mut scratch)
                .unwrap();
            scratch.clear();
            nfa.reset();
        }
    }
    let churn_allocs = allocations() - before;
    assert!(matches > 0, "churn workload must complete matches");
    assert_eq!(
        churn_allocs, 0,
        "seed/expire/complete steady state must not allocate"
    );
    println!("alloc-check: seed/expire/match churn    0 allocations ✓ ({matches} matches/pass)");

    // (c) Columnar path: the per-batch block build and the predicate
    // pre-pass (per-(step, tuple) bitmasks + pooled kernel scratch in
    // the MatchScratch) must also be allocation-free once warm.
    let mut nfas = compile_gestures(4);
    let mut block = ColumnBlock::new();
    let mut block_matches = 0u64;
    for _ in 0..2 {
        block_matches = 0;
        block.fill_from_tuples(&tuples);
        for nfa in nfas.iter_mut() {
            nfa.advance_block_into(SOURCE, &tuples, Some(&block), &mut scratch)
                .unwrap();
            block_matches += scratch.len() as u64;
            scratch.clear();
            nfa.reset();
        }
    }
    let before = allocations();
    for _ in 0..16 {
        block.fill_from_tuples(&tuples);
        for nfa in nfas.iter_mut() {
            nfa.advance_block_into(SOURCE, &tuples, Some(&block), &mut scratch)
                .unwrap();
            scratch.clear();
            nfa.reset();
        }
    }
    let block_allocs = allocations() - before;
    assert_eq!(block_matches, matches, "block path must agree on matches");
    assert_eq!(
        block_allocs, 0,
        "columnar pre-pass steady state must not allocate"
    );
    println!("alloc-check: block build + pre-pass     0 allocations ✓");

    // (d) The dist() kernel's six-lane read must stay allocation-free
    // too (it seeds every tuple here, shedding at the run cap).
    let mut dist_nfa = Nfa::compile(
        &parse_pattern(&format!(
            "{SOURCE}(dist(x, y, z, x, y, z) < 1) -> {SOURCE}(x > 9000)"
        ))
        .unwrap(),
        &SingleSchema(schema()),
        &FunctionRegistry::with_builtins(),
    )
    .unwrap()
    .with_max_runs(64);
    // Longer warmup: this workload cycles the event arena through
    // mark-compaction (every ~2 batches), so the compaction scratch
    // only reaches its high-water capacity after a few cycles.
    for _ in 0..8 {
        block.fill_from_tuples(&tuples);
        dist_nfa
            .advance_block_into(SOURCE, &tuples, Some(&block), &mut scratch)
            .unwrap();
        scratch.clear();
    }
    let before = allocations();
    for _ in 0..16 {
        block.fill_from_tuples(&tuples);
        dist_nfa
            .advance_block_into(SOURCE, &tuples, Some(&block), &mut scratch)
            .unwrap();
        scratch.clear();
    }
    let dist_allocs = allocations() - before;
    assert!(
        dist_nfa.shed_runs() > 0,
        "dist workload must exercise the cap"
    );
    assert_eq!(
        dist_allocs, 0,
        "dist kernels must not allocate at steady state"
    );
    println!("alloc-check: dist kernel pre-pass       0 allocations ✓");

    // (e) The kernel stage timer must never be a heap path: with
    // sampling fully off and at its most aggressive (every batch),
    // steady state stays allocation-free — the timer is two clock
    // reads and a histogram bucket increment, all atomics.
    let mut nfas = compile_gestures(4);
    for every in [0u32, 1] {
        gesto_cep::metrics::KERNEL_SAMPLER.set_every(every);
        for _ in 0..2 {
            block.fill_from_tuples(&tuples);
            for nfa in nfas.iter_mut() {
                nfa.advance_block_into(SOURCE, &tuples, Some(&block), &mut scratch)
                    .unwrap();
                scratch.clear();
                nfa.reset();
            }
        }
        let before = allocations();
        for _ in 0..16 {
            block.fill_from_tuples(&tuples);
            for nfa in nfas.iter_mut() {
                nfa.advance_block_into(SOURCE, &tuples, Some(&block), &mut scratch)
                    .unwrap();
                scratch.clear();
                nfa.reset();
            }
        }
        let timer_allocs = allocations() - before;
        assert_eq!(
            timer_allocs, 0,
            "stage-timer sampling (every={every}) must not allocate"
        );
    }
    gesto_cep::metrics::KERNEL_SAMPLER.set_every(64);
    println!("alloc-check: stage timer off/every=1    0 allocations ✓");
}

/// Times the columnar path with the kernel stage timer disabled vs
/// sampling every batch: the observability overhead guard.
fn ab_stage_timer(tuples: &[Tuple]) -> (f64, f64) {
    let frames = tuples.len() as f64;
    let mut nfas = compile_gestures(4);
    let mut scratch = MatchScratch::new();
    let mut block = ColumnBlock::new();
    let pass = |nfas: &mut Vec<Nfa>, block: &mut ColumnBlock, scratch: &mut MatchScratch| {
        block.fill_from_tuples(tuples);
        for nfa in nfas.iter_mut() {
            nfa.advance_block_into(SOURCE, tuples, Some(block), scratch)
                .unwrap();
            scratch.clear();
            nfa.reset();
        }
    };
    gesto_cep::metrics::KERNEL_SAMPLER.set_every(0);
    let off_ns = measure(|| pass(&mut nfas, &mut block, &mut scratch));
    gesto_cep::metrics::KERNEL_SAMPLER.set_every(1);
    let on_ns = measure(|| pass(&mut nfas, &mut block, &mut scratch));
    gesto_cep::metrics::KERNEL_SAMPLER.set_every(64);
    (frames / (off_ns / 1e9), frames / (on_ns / 1e9))
}

fn main() {
    let mut json: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        // `cargo bench -- <filter>` style args are ignored.
        if a == "--json" {
            json = Some(it.next().expect("--json PATH"));
        }
    }

    println!("NFA stepping — per-tuple vs batched advance");
    println!("===========================================\n");
    assert_zero_allocations();
    println!();

    let tuples = workload(512);
    let mut results = Vec::new();
    println!(
        "{:>9} {:>16} {:>16} {:>16} {:>9} {:>9} {:>9}",
        "gestures", "per-tuple f/s", "batched f/s", "block f/s", "speedup", "blk-spdup", "matches"
    );
    for n in [1usize, 4, 16] {
        let r = ab_advance(n, &tuples);
        println!(
            "{:>9} {:>16.0} {:>16.0} {:>16.0} {:>8.2}x {:>8.2}x {:>9}",
            r.gestures,
            r.per_tuple_fps,
            r.batched_fps,
            r.block_fps,
            r.speedup,
            r.block_speedup,
            r.matches
        );
        results.push(r);
    }

    let (timer_off_fps, timer_on_fps) = ab_stage_timer(&tuples);
    let timer_overhead_pct = (timer_off_fps / timer_on_fps - 1.0) * 100.0;
    println!(
        "\nstage-timer A/B (4 gestures, block path): off {timer_off_fps:.0} f/s, \
         every-batch {timer_on_fps:.0} f/s ({timer_overhead_pct:+.2}% overhead)"
    );

    if let Some(path) = json {
        let mut rows = String::new();
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            rows.push_str(&format!(
                "    {{\"gestures\": {}, \"per_tuple_frames_per_sec\": {:.0}, \"batched_frames_per_sec\": {:.0}, \"block_frames_per_sec\": {:.0}, \"speedup\": {:.2}, \"block_speedup\": {:.2}, \"matches_per_pass\": {}}}",
                r.gestures, r.per_tuple_fps, r.batched_fps, r.block_fps, r.speedup, r.block_speedup, r.matches
            ));
        }
        let json_text = format!(
            "{{\n  \"experiment\": \"bench_nfa\",\n  \"frames\": {},\n  \"zero_alloc_steady_state\": true,\n  \"stage_timer_off_frames_per_sec\": {timer_off_fps:.0},\n  \"stage_timer_on_frames_per_sec\": {timer_on_fps:.0},\n  \"stage_timer_overhead_pct\": {timer_overhead_pct:.2},\n  \"results\": [\n{rows}\n  ]\n}}\n",
            tuples.len()
        );
        std::fs::write(&path, json_text).expect("write json");
        println!("\nwrote {path}");
    }
}

//! Criterion: NFA match-operator throughput (C4 companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gesto_bench::{learn_gesture, perform};
use gesto_cep::Engine;
use gesto_kinect::{frames_to_tuples, gestures, kinect_schema, NoiseModel, Persona, KINECT_STREAM};
use gesto_learn::query_gen::{generate_query, QueryStyle};
use gesto_learn::LearnerConfig;
use gesto_transform::standard_catalog;

fn workload() -> Vec<gesto_stream::Tuple> {
    let persona = Persona::reference().with_noise(NoiseModel::realistic());
    let frames = perform(&gestures::swipe_right(), &persona, 1);
    frames_to_tuples(&frames, &kinect_schema())
}

fn bench_queries_scaling(c: &mut Criterion) {
    let tuples = workload();
    let specs = [
        gestures::swipe_right(),
        gestures::swipe_up(),
        gestures::push(),
        gestures::circle(),
    ];
    let mut group = c.benchmark_group("nfa/deployed_queries");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    for n in [1usize, 4, 16] {
        let engine = Engine::new(standard_catalog());
        for i in 0..n {
            let mut def = learn_gesture(
                &specs[i % specs.len()],
                2,
                i as u64,
                LearnerConfig::default(),
            );
            def.name = format!("g{i}");
            engine
                .deploy(generate_query(&def, QueryStyle::TransformedView))
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                engine.run_batch(KINECT_STREAM, &tuples).unwrap();
                engine.reset_runs();
            })
        });
    }
    group.finish();
}

fn bench_single_query_detection(c: &mut Criterion) {
    let tuples = workload();
    let def = learn_gesture(&gestures::swipe_right(), 3, 50, LearnerConfig::default());
    let engine = Engine::new(standard_catalog());
    engine
        .deploy(generate_query(&def, QueryStyle::TransformedView))
        .unwrap();
    let mut group = c.benchmark_group("nfa/single_query");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    group.bench_function("swipe_detection", |b| {
        b.iter(|| {
            engine.run_batch(KINECT_STREAM, &tuples).unwrap();
            engine.reset_runs();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries_scaling, bench_single_query_detection);
criterion_main!(benches);

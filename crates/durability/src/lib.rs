//! # gesto-durability — crash-safe persistence primitives
//!
//! The control plane of a gesture server (teach / deploy / undeploy /
//! set-config) is state you cannot afford to lose on a crash. This crate
//! provides the storage layer that makes it durable, with no
//! dependencies beyond `std`:
//!
//! * [`journal`] — a CRC32-framed, length-prefixed **write-ahead
//!   journal** over rotating segment files, with configurable fsync
//!   policies ([`FsyncPolicy`]) and torn-tail / corrupt-record detection
//!   that truncates to the last valid record on replay.
//! * [`checkpoint`] — **atomic snapshots** written via
//!   temp-file-then-rename, CRC-validated on load, so a crash mid-write
//!   can never destroy the previous checkpoint.
//! * [`failpoint`] — a fault-injecting file wrapper used by the
//!   crash-recovery property tests to cut, flip or shorten writes at an
//!   exact byte offset.
//!
//! Payloads are opaque byte slices: callers pick their own encoding
//! (the server journals JSON control ops). The on-disk formats are
//! normatively documented in `docs/DURABILITY.md` and pinned by the
//! `journal_conformance` golden tests — they cannot drift silently.
//!
//! ```
//! use gesto_durability::{FsyncPolicy, Journal};
//!
//! let dir = std::env::temp_dir().join(format!("gesto-wal-doc-{}", std::process::id()));
//! let (mut journal, replay) = Journal::open(&dir, FsyncPolicy::Always).unwrap();
//! assert!(replay.records.is_empty());
//! journal.append(b"deploy swipe_right").unwrap();
//!
//! // A later process replays exactly what was appended.
//! drop(journal);
//! let (_journal, replay) = Journal::open(&dir, FsyncPolicy::Always).unwrap();
//! assert_eq!(replay.records, vec![(1, b"deploy swipe_right".to_vec())]);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod failpoint;
pub mod journal;

pub use checkpoint::{
    load_newest_checkpoint, prune_checkpoints, save_checkpoint, LoadedCheckpoint,
};
pub use failpoint::{Failpoint, FailpointFs};
pub use journal::{replay_dir, FsyncPolicy, Journal, JournalStats, Replay};

/// CRC-32 (IEEE 802.3, the polynomial used by zlib/gzip/PNG), computed
/// bytewise from a compile-time table. One-shot form of [`Crc32`].
///
/// ```
/// assert_eq!(gesto_durability::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// Incremental CRC-32 (IEEE) state, for checksumming scattered buffers
/// without concatenating them.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s = CRC_TABLE[((s ^ u32::from(b)) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// The checksum over everything fed so far.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// The IEEE CRC-32 table (reflected polynomial 0xEDB88320), built at
/// compile time so the hot path is one lookup + xor per byte.
static CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut c = Crc32::new();
        c.update(b"123");
        c.update(b"456789");
        assert_eq!(c.finalize(), crc32(b"123456789"));
    }
}

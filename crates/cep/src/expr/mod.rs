//! Expressions: AST, scalar functions, compilation and evaluation.

mod ast;
mod block;
mod eval;
mod functions;

pub use ast::{BinOp, Expr, UnaryOp};
pub use block::{eval_fused_block, BlockMasks, EvalScratch};
pub use eval::{compile, CompiledExpr, FusedInput};
pub use functions::{Arity, FunctionRegistry, ScalarFn};

//! # gesto-cep — complex event processing for gesture detection
//!
//! The CEP engine of the reproduction of *Beier et al., "Learning Event
//! Patterns for Gesture Detection"* (EDBT 2014): a query language in the
//! paper's dialect (Fig. 1), an expression evaluator with user-defined
//! scalar functions, an NFA-based `match` operator with `within` time
//! constraints and `select`/`consume` policies, and a runtime engine that
//! deploys, replaces and undeploys queries on live streams.
//!
//! ```
//! use std::sync::Arc;
//! use gesto_stream::{Catalog, SchemaBuilder, Tuple, Value};
//! use gesto_cep::Engine;
//!
//! let catalog = Arc::new(Catalog::new());
//! let schema = SchemaBuilder::new("kinect").timestamp("ts").float("x").build().unwrap();
//! catalog.register_stream(schema.clone()).unwrap();
//!
//! let engine = Engine::new(catalog);
//! engine.deploy_text(
//!     r#"SELECT "swipe" MATCHING kinect(x < 10) -> kinect(x > 90) within 1 seconds;"#,
//! ).unwrap();
//!
//! let t0 = Tuple::new(schema.clone(), vec![Value::Timestamp(0), Value::Float(0.0)]).unwrap();
//! let t1 = Tuple::new(schema, vec![Value::Timestamp(500), Value::Float(100.0)]).unwrap();
//! assert!(engine.push("kinect", &t0).unwrap().is_empty());
//! assert_eq!(engine.push("kinect", &t1).unwrap()[0].gesture, "swipe");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod error;
pub mod expr;
pub mod fixtures;
mod lexer;
mod match_op;
pub mod metrics;
mod nfa;
mod parser;
mod pattern;
mod plan;

pub use engine::{DetectionListener, Engine, QueryStats};
pub use error::CepError;
pub use expr::{BinOp, Expr, FunctionRegistry, UnaryOp};
pub use match_op::{detection_schema, Detection, MatchOp};
pub use nfa::{
    MatchScratch, MatchView, Nfa, NfaMatch, NfaProgram, NfaRuntime, SchemaResolver, SingleSchema,
    TimeConstraint, DEFAULT_MAX_RUNS,
};
pub use parser::{parse_expr, parse_pattern, parse_query};
pub use pattern::{ConsumePolicy, EventPattern, Pattern, Query, SelectPolicy, SequencePattern};
pub use plan::{compiled_plan_count, sync_block_columns, PlanInstance, QueryPlan, RouteSpec};

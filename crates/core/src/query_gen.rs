//! Query generation (§3.3.4).
//!
//! For each pose MBR the generator emits the conjunction
//! `⋀ abs(coord − center) < width` over the active joints/coordinates,
//! joins poses with nested sequence operators (left-deep, one `within`
//! budget per transition) and wraps everything in a named `SELECT ...
//! MATCHING ...;` query — the exact shape of Fig. 1.

use gesto_cep::{BinOp, Expr, Pattern, Query};
use serde::{Deserialize, Serialize};

use crate::model::GestureDefinition;
use crate::window::PoseWindow;

/// Coordinate style of generated predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueryStyle {
    /// Over the transformed view: coordinates are already torso-relative
    /// (`abs(rHand_x - 400) < 50` on `kinect_t`).
    #[default]
    TransformedView,
    /// Over the raw stream with explicit torso subtraction, exactly as in
    /// Fig. 1 (`abs(rHand_x - torso_x - 400) < 50` on `kinect`).
    RawTorsoRelative,
}

/// Rounds query literals to 2 decimals — learned centres carry float
/// noise that would otherwise print as `84.00999999999999`; 0.01 mm is
/// far below sensor noise.
fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Builds `expr - c` for `c >= 0` and `expr + |c|` for `c < 0`, matching
/// the paper's "`- 400`" / "`+ 120`" print style.
fn offset_by_center(expr: Expr, center: f64) -> Expr {
    let center = round2(center);
    if center >= 0.0 {
        Expr::bin(BinOp::Sub, expr, Expr::lit(center))
    } else {
        Expr::bin(BinOp::Add, expr, Expr::lit(-center))
    }
}

/// The range predicate of one pose window.
pub fn pose_predicate(def: &GestureDefinition, pose: &PoseWindow, style: QueryStyle) -> Expr {
    let mut terms = Vec::new();
    for d in 0..def.joints.dims() {
        if !def.active_dims[d] {
            continue;
        }
        let coord = Expr::col(def.joints.dim_name(d));
        let axis = ["x", "y", "z"][d % 3];
        let lhs = match style {
            QueryStyle::TransformedView => coord,
            QueryStyle::RawTorsoRelative => {
                Expr::bin(BinOp::Sub, coord, Expr::col(format!("torso_{axis}")))
            }
        };
        terms.push(Expr::lt(
            Expr::abs(offset_by_center(lhs, pose.center[d])),
            Expr::lit(round2(pose.width[d])),
        ));
    }
    Expr::and_all(terms)
}

/// Generates the pattern for a gesture definition: left-deep nested
/// sequences with a `within` budget per pose transition.
pub fn to_pattern(def: &GestureDefinition, style: QueryStyle, source: &str) -> Pattern {
    let mut events = def
        .poses
        .iter()
        .map(|p| Pattern::event(source, pose_predicate(def, p, style)));
    let first = events.next().expect("validated definition has poses");
    events
        .zip(&def.within_ms)
        .fold(first, |acc, (event, within)| {
            Pattern::sequence(vec![acc, event], Some(*within))
        })
}

/// Generates the complete detection query.
pub fn generate_query(def: &GestureDefinition, style: QueryStyle) -> Query {
    let source = match style {
        QueryStyle::TransformedView => "kinect_t",
        QueryStyle::RawTorsoRelative => "kinect",
    };
    generate_query_on(def, style, source)
}

/// Generates the query against an explicit source stream/view name.
pub fn generate_query_on(def: &GestureDefinition, style: QueryStyle, source: &str) -> Query {
    Query::new(def.name.clone(), to_pattern(def, style, source))
}

/// Generates the query text (parsable, Fig. 1 format).
pub fn generate_query_text(def: &GestureDefinition, style: QueryStyle) -> String {
    generate_query(def, style).to_query_text()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::JointSet;
    use gesto_cep::parse_query;

    /// A hand-built definition mirroring Fig. 1's three windows.
    fn fig1_def() -> GestureDefinition {
        let js = JointSet::right_hand();
        GestureDefinition {
            name: "swipe_right".into(),
            joints: js,
            poses: vec![
                PoseWindow::new(vec![0.0, 150.0, -120.0], vec![50.0, 50.0, 50.0]),
                PoseWindow::new(vec![400.0, 150.0, -420.0], vec![50.0, 50.0, 50.0]),
                PoseWindow::new(vec![800.0, 150.0, -120.0], vec![50.0, 50.0, 50.0]),
            ],
            within_ms: vec![1000, 1000],
            active_dims: vec![true; 3],
            sample_count: 3,
        }
    }

    #[test]
    fn raw_style_reproduces_fig1_predicates() {
        let text = generate_query_text(&fig1_def(), QueryStyle::RawTorsoRelative);
        assert!(text.contains("SELECT \"swipe_right\""), "{text}");
        assert!(text.contains("abs(rHand_x - torso_x - 0) < 50"), "{text}");
        assert!(text.contains("abs(rHand_x - torso_x - 400) < 50"), "{text}");
        assert!(text.contains("abs(rHand_z - torso_z + 120) < 50"), "{text}");
        assert!(text.contains("abs(rHand_z - torso_z + 420) < 50"), "{text}");
        assert!(
            text.contains("within 1 seconds select first consume all"),
            "{text}"
        );
        assert!(text.contains("kinect("), "{text}");
    }

    #[test]
    fn transformed_style_drops_torso_terms() {
        let text = generate_query_text(&fig1_def(), QueryStyle::TransformedView);
        assert!(text.contains("abs(rHand_x - 400) < 50"), "{text}");
        assert!(!text.contains("torso_x"), "{text}");
        assert!(text.contains("kinect_t("), "{text}");
    }

    #[test]
    fn generated_text_parses_back_to_same_query() {
        for style in [QueryStyle::TransformedView, QueryStyle::RawTorsoRelative] {
            let q = generate_query(&fig1_def(), style);
            let text = q.to_query_text();
            let reparsed = parse_query(&text)
                .unwrap_or_else(|e| panic!("generated query must parse ({style:?}): {e}\n{text}"));
            assert_eq!(q, reparsed, "round trip ({style:?})");
        }
    }

    #[test]
    fn pattern_structure_left_deep() {
        let p = to_pattern(&fig1_def(), QueryStyle::TransformedView, "kinect_t");
        assert_eq!(p.event_count(), 3);
        assert_eq!(p.depth(), 2, "left-deep nesting: ((e1->e2)->e3)");
        match &p {
            Pattern::Sequence(s) => assert_eq!(s.within_ms, Some(1000)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inactive_dims_are_omitted() {
        let mut def = fig1_def();
        def.active_dims = vec![true, true, false]; // drop z
        let text = generate_query_text(&def, QueryStyle::TransformedView);
        assert!(!text.contains("rHand_z"), "{text}");
        assert!(text.contains("rHand_x") && text.contains("rHand_y"));
    }

    #[test]
    fn single_pose_definition_generates_event_query() {
        let mut def = fig1_def();
        def.poses.truncate(1);
        def.within_ms.clear();
        let q = generate_query(&def, QueryStyle::TransformedView);
        assert!(matches!(q.pattern, Pattern::Event(_)));
        assert!(parse_query(&q.to_query_text()).is_ok());
    }

    #[test]
    fn per_transition_budgets() {
        let mut def = fig1_def();
        def.within_ms = vec![800, 2500];
        let text = generate_query_text(&def, QueryStyle::TransformedView);
        assert!(text.contains("within 800 ms"), "{text}");
        assert!(text.contains("within 2500 ms"), "{text}");
    }
}

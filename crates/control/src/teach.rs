//! The shared teach pipeline: raw samples → transformed samples →
//! learned definition → generated query, with all artefacts recorded in
//! a [`GestureStore`].
//!
//! Both the single-user `GestureSystem` facade and the multi-session
//! `gesto-serve` handle run exactly this pipeline; only the final
//! deployment step differs (engine replace vs shard broadcast), so that
//! step stays with the caller.

use gesto_cep::Query;
use gesto_db::GestureStore;
use gesto_kinect::SkeletonFrame;
use gesto_learn::query_gen::{generate_query, QueryStyle};
use gesto_learn::{GestureDefinition, GestureSample, LearnError, Learner, LearnerConfig};
use gesto_transform::{TransformConfig, Transformer};

/// Learns a gesture from raw camera-frame samples (applying the
/// `kinect_t` transformation per sample), stores the samples, definition
/// and generated query text in `store`, and returns the definition plus
/// the ready-to-deploy query.
pub fn learn_into_store(
    store: &GestureStore,
    name: &str,
    samples: &[Vec<SkeletonFrame>],
    config: LearnerConfig,
) -> Result<(GestureDefinition, Query), LearnError> {
    let mut learner = Learner::new(config);
    for frames in samples {
        let mut tr = Transformer::new(TransformConfig::default());
        let transformed: Vec<SkeletonFrame> = frames
            .iter()
            .filter_map(|f| tr.transform_frame(f))
            .collect();
        learner.add_sample_frames(&transformed)?;
        let sample = GestureSample::from_frames(&transformed, &learner.config().joints);
        store.add_sample(name, sample);
    }
    let def = learner.finalize(name)?;
    let query = generate_query(&def, QueryStyle::TransformedView);
    store
        .put_definition(def.clone())
        .map_err(|e| LearnError::Invalid(e.to_string()))?;
    store.put_query_text(name, query.to_query_text());
    Ok((def, query))
}

//! CPU affinity for shard workers — dependency-free, like the epoll
//! backend in [`crate::net`].
//!
//! The vendored dependency set has no `libc`/`core_affinity`, so on
//! Linux (x86_64/aarch64) thread pinning issues the raw
//! `sched_setaffinity` syscall with `core::arch::asm!`; everywhere else
//! it is a no-op that reports failure, and callers degrade to unpinned
//! workers.
//!
//! Placement policy ([`placement`]): core 0 is reserved for the network
//! I/O thread(s) whenever the host has at least one core to spare, and
//! shard `i` pins to core `1 + (i % (cores - 1))`. On a single-core
//! host pinning is pointless (everything time-shares core 0 anyway), so
//! the policy assigns nothing and workers run unpinned.

/// Number of logical CPUs visible to this process (best-effort; 1 when
/// unknown).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Target core for one shard under the placement policy, or `None` when
/// the shard should run unpinned.
///
/// With `cores >= 2`, core 0 is left to the net I/O thread(s) and shard
/// `shard` goes to core `1 + (shard % (cores - 1))`; with one core the
/// policy pins nothing.
pub fn placement(shard: usize, cores: usize) -> Option<usize> {
    if cores < 2 {
        return None;
    }
    Some(1 + (shard % (cores - 1)))
}

/// Pins the calling thread to `cpu`. Returns `true` on success; `false`
/// where unsupported (non-Linux, exotic arch) or when the kernel
/// rejects the mask (e.g. the cpu is outside the cgroup's cpuset).
pub fn pin_current_thread(cpu: usize) -> bool {
    imp::pin_current_thread(cpu)
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    // Syscall numbers (same order: x86_64, aarch64).
    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const SCHED_SETAFFINITY: usize = 203;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const SCHED_SETAFFINITY: usize = 122;
    }

    /// Issues a raw syscall; returns the kernel's result (negative =
    /// `-errno`).
    unsafe fn syscall6(n: usize, args: [usize; 6]) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") args[0],
            in("rsi") args[1],
            in("rdx") args[2],
            in("r10") args[3],
            in("r8") args[4],
            in("r9") args[5],
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        #[cfg(target_arch = "aarch64")]
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") args[0] => ret,
            in("x1") args[1],
            in("x2") args[2],
            in("x3") args[3],
            in("x4") args[4],
            in("x5") args[5],
            options(nostack),
        );
        ret
    }

    pub fn pin_current_thread(cpu: usize) -> bool {
        // 1024-bit cpu mask, the kernel's default CONFIG_NR_CPUS ceiling.
        let mut mask = [0u64; 16];
        let (word, bit) = (cpu / 64, cpu % 64);
        if word >= mask.len() {
            return false;
        }
        mask[word] = 1u64 << bit;
        // pid 0 = calling thread.
        let ret = unsafe {
            syscall6(
                nr::SCHED_SETAFFINITY,
                [
                    0,
                    std::mem::size_of_val(&mask),
                    mask.as_ptr() as usize,
                    0,
                    0,
                    0,
                ],
            )
        };
        ret == 0
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    pub fn pin_current_thread(_cpu: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_reserves_core_zero() {
        // Single core: nothing pins.
        for shard in 0..8 {
            assert_eq!(placement(shard, 1), None);
        }
        // Two cores: every shard shares core 1, core 0 stays free for I/O.
        for shard in 0..8 {
            assert_eq!(placement(shard, 2), Some(1));
        }
        // Four cores: shards round-robin over cores 1..=3.
        let cores: Vec<_> = (0..6).map(|s| placement(s, 4).unwrap()).collect();
        assert_eq!(cores, vec![1, 2, 3, 1, 2, 3]);
        assert!(!cores.contains(&0));
    }

    #[test]
    fn pin_current_thread_succeeds_on_linux() {
        // Core 0 always exists; on supported Linux targets the syscall
        // must succeed, elsewhere the portable fallback reports false.
        let ok = pin_current_thread(0);
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        assert!(ok);
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        assert!(!ok);
        // An absurd cpu index is rejected, not fatal.
        assert!(!pin_current_thread(1 << 20));
    }
}

//! Server configuration.

/// What `push_batch` does when a shard's ingest queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the caller until the shard catches up. No frame is ever
    /// lost; producer threads absorb the slowdown.
    #[default]
    Block,
    /// Enqueue the new batch and shed the oldest still-queued batch on
    /// that shard. Latency stays bounded; stale frames are sacrificed
    /// first (the right trade for live gesture streams).
    DropOldest,
    /// Refuse the batch with [`crate::ServeError::QueueFull`]; the caller
    /// decides whether to retry, thin out or drop.
    Reject,
}

/// Configuration of a [`crate::Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker shards (detection threads). `0` means one per available
    /// CPU core.
    pub shards: usize,
    /// Maximum queued frame batches per shard before the backpressure
    /// policy kicks in (a soft bound under concurrent producers).
    pub queue_capacity: usize,
    /// Full-queue behaviour.
    pub backpressure: BackpressurePolicy,
    /// Columnar data path: build one structure-of-arrays block per
    /// batch (straight from the skeleton frames) and run the NFA's
    /// vectorized predicate pre-pass over its float lanes. Disable to
    /// A/B against the scalar tuple-at-a-time evaluation; detections
    /// are bit-identical either way.
    pub columnar: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            shards: 0,
            queue_capacity: 1024,
            backpressure: BackpressurePolicy::default(),
            columnar: true,
        }
    }
}

impl ServerConfig {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the shard count (`0` = one per CPU core).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the per-shard queue capacity (minimum 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the full-queue behaviour.
    pub fn with_backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Enables or disables the columnar batch path (enabled by default).
    pub fn with_columnar(mut self, on: bool) -> Self {
        self.columnar = on;
        self
    }

    /// Resolved shard count: the configured value, or one shard per
    /// available CPU core when unset.
    pub fn effective_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

//! Atomic, CRC-validated checkpoints.
//!
//! A checkpoint captures the full control-plane state at a journal
//! sequence number, so recovery can load it and replay only the journal
//! tail. Two properties make it crash-safe:
//!
//! * **Atomic replace** — the payload is written to a temp file in the
//!   same directory, fsynced, then `rename`d into place (rename within
//!   a directory is atomic on POSIX). A crash mid-write leaves the
//!   previous checkpoint untouched.
//! * **Validated load** — the header carries a CRC32 over the sequence
//!   number, length and payload; [`load_newest_checkpoint`] walks the
//!   checkpoints newest-first and returns the first that validates,
//!   skipping corrupt ones instead of deserializing garbage.
//!
//! # File format (normative, pinned by `journal_conformance`)
//!
//! ```text
//! offset  size  field
//! 0       4     magic    b"GCK1"
//! 4       4     crc32    (u32 LE, IEEE; over bytes 8..20 ++ payload)
//! 8       8     seq      (u64 LE: last journaled op the payload covers)
//! 16      4     payload_len (u32 LE)
//! 20      n     payload  (opaque bytes)
//! ```
//!
//! Files are named `ckpt-<seq>.ckpt`, seq zero-padded to 20 digits.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::journal::sync_dir;
use crate::Crc32;

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"GCK1";

/// Bytes of framing before a checkpoint's payload.
pub const CHECKPOINT_HEADER_LEN: usize = 20;

/// A checkpoint read back from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedCheckpoint {
    /// Journal sequence number the payload covers (replay resumes at
    /// `seq + 1`).
    pub seq: u64,
    /// The opaque snapshot payload.
    pub payload: Vec<u8>,
    /// Corrupt or unreadable newer checkpoint files that were skipped
    /// before this one validated.
    pub corrupt_skipped: usize,
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("ckpt-{seq:020}.ckpt"))
}

/// Checkpoint files in `dir`, sorted by seq ascending.
fn checkpoint_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".ckpt"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Writes a checkpoint of `payload` covering journal sequence `seq`
/// into `dir`, atomically (temp file + rename + directory fsync).
/// Returns the final path.
pub fn save_checkpoint(dir: impl AsRef<Path>, seq: u64, payload: &[u8]) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut crc = Crc32::new();
    let seq_bytes = seq.to_le_bytes();
    let len_bytes = (payload.len() as u32).to_le_bytes();
    crc.update(&seq_bytes);
    crc.update(&len_bytes);
    crc.update(payload);

    let tmp = dir.join(".ckpt-tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(CHECKPOINT_MAGIC)?;
        f.write_all(&crc.finalize().to_le_bytes())?;
        f.write_all(&seq_bytes)?;
        f.write_all(&len_bytes)?;
        f.write_all(payload)?;
        f.sync_data()?;
    }
    let path = checkpoint_path(dir, seq);
    std::fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    Ok(path)
}

/// Validates and decodes one checkpoint file's bytes.
fn decode(bytes: &[u8]) -> Option<(u64, Vec<u8>)> {
    if bytes.len() < CHECKPOINT_HEADER_LEN || &bytes[0..4] != CHECKPOINT_MAGIC {
        return None;
    }
    let stored_crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    if bytes.len() != CHECKPOINT_HEADER_LEN + len {
        return None;
    }
    let payload = &bytes[CHECKPOINT_HEADER_LEN..];
    let mut crc = Crc32::new();
    crc.update(&bytes[8..20]);
    crc.update(payload);
    if crc.finalize() != stored_crc {
        return None;
    }
    Some((seq, payload.to_vec()))
}

/// Loads the newest checkpoint in `dir` that validates (magic, length
/// and CRC), skipping corrupt ones. `Ok(None)` when the directory holds
/// no valid checkpoint (or does not exist).
pub fn load_newest_checkpoint(dir: impl AsRef<Path>) -> io::Result<Option<LoadedCheckpoint>> {
    let dir = dir.as_ref();
    if !dir.exists() {
        return Ok(None);
    }
    let mut corrupt_skipped = 0;
    for (_, path) in checkpoint_files(dir)?.into_iter().rev() {
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        match decode(&bytes) {
            Some((seq, payload)) => {
                return Ok(Some(LoadedCheckpoint {
                    seq,
                    payload,
                    corrupt_skipped,
                }))
            }
            None => corrupt_skipped += 1,
        }
    }
    Ok(None)
}

/// Deletes all but the newest `keep` checkpoints. Returns how many were
/// removed.
pub fn prune_checkpoints(dir: impl AsRef<Path>, keep: usize) -> io::Result<usize> {
    let dir = dir.as_ref();
    let files = checkpoint_files(dir)?;
    let mut removed = 0;
    if files.len() > keep {
        for (_, path) in &files[..files.len() - keep] {
            std::fs::remove_file(path)?;
            removed += 1;
        }
        sync_dir(dir)?;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gesto-ckpt-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = scratch_dir("roundtrip");
        save_checkpoint(&dir, 7, b"state at seven").unwrap();
        let loaded = load_newest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(loaded.seq, 7);
        assert_eq!(loaded.payload, b"state at seven");
        assert_eq!(loaded.corrupt_skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newest_valid_wins_and_corrupt_is_skipped() {
        let dir = scratch_dir("newest");
        save_checkpoint(&dir, 3, b"old").unwrap();
        let newest = save_checkpoint(&dir, 9, b"new").unwrap();
        // Corrupt the newest in place (flip a payload byte).
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let loaded = load_newest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(loaded.seq, 3, "falls back to the older valid checkpoint");
        assert_eq!(loaded.payload, b"old");
        assert_eq!(loaded.corrupt_skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_checkpoint_is_invalid() {
        let dir = scratch_dir("trunc");
        let path = save_checkpoint(&dir, 5, b"will be cut").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(load_newest_checkpoint(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_is_none() {
        assert_eq!(
            load_newest_checkpoint("/nonexistent/gesto-ckpt").unwrap(),
            None
        );
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = scratch_dir("prune");
        for seq in [1, 2, 3, 4] {
            save_checkpoint(&dir, seq, b"x").unwrap();
        }
        assert_eq!(prune_checkpoints(&dir, 2).unwrap(), 2);
        let loaded = load_newest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(loaded.seq, 4);
        assert_eq!(checkpoint_files(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}

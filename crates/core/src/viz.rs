//! Visualisation of learned gestures (Fig. 5 substitute).
//!
//! The paper's demo renders mined windows on an animated 3D body model.
//! Headless equivalents: an ASCII projection for terminal experiment
//! output and an SVG rendering for documentation — both show the pose
//! windows and, optionally, a recorded path, which is what makes
//! detection problems debuggable (§3.1).

use std::fmt::Write as _;

use crate::model::{GestureDefinition, PathPoint};

/// Which two feature dimensions to project onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Projection {
    /// Horizontal feature dimension index.
    pub x_dim: usize,
    /// Vertical feature dimension index.
    pub y_dim: usize,
}

impl Default for Projection {
    fn default() -> Self {
        // Frontal plane of the first joint: x vs y.
        Self { x_dim: 0, y_dim: 1 }
    }
}

struct Bounds {
    min_x: f64,
    max_x: f64,
    min_y: f64,
    max_y: f64,
}

fn bounds(def: &GestureDefinition, path: &[PathPoint], proj: Projection) -> Bounds {
    let mut b = Bounds {
        min_x: f64::MAX,
        max_x: f64::MIN,
        min_y: f64::MAX,
        max_y: f64::MIN,
    };
    for p in &def.poses {
        b.min_x = b.min_x.min(p.min(proj.x_dim));
        b.max_x = b.max_x.max(p.max(proj.x_dim));
        b.min_y = b.min_y.min(p.min(proj.y_dim));
        b.max_y = b.max_y.max(p.max(proj.y_dim));
    }
    for p in path {
        b.min_x = b.min_x.min(p.feat[proj.x_dim]);
        b.max_x = b.max_x.max(p.feat[proj.x_dim]);
        b.min_y = b.min_y.min(p.feat[proj.y_dim]);
        b.max_y = b.max_y.max(p.feat[proj.y_dim]);
    }
    // Pad 5% so strokes don't sit on the border.
    let pad_x = ((b.max_x - b.min_x) * 0.05).max(1.0);
    let pad_y = ((b.max_y - b.min_y) * 0.05).max(1.0);
    b.min_x -= pad_x;
    b.max_x += pad_x;
    b.min_y -= pad_y;
    b.max_y += pad_y;
    b
}

/// Renders the definition (and an optional path) as an ASCII grid.
///
/// Windows are drawn as digit-labelled corners (`1`, `2`, ... per pose);
/// path points as `·`.
pub fn ascii(def: &GestureDefinition, path: &[PathPoint], cols: usize, rows: usize) -> String {
    let proj = Projection::default();
    let cols = cols.clamp(20, 240);
    let rows = rows.clamp(10, 120);
    let b = bounds(def, path, proj);
    let mut grid = vec![vec![' '; cols]; rows];
    let to_cell = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x - b.min_x) / (b.max_x - b.min_x) * (cols - 1) as f64).round() as usize;
        // Screen y grows downward.
        let cy = ((b.max_y - y) / (b.max_y - b.min_y) * (rows - 1) as f64).round() as usize;
        (cx.min(cols - 1), cy.min(rows - 1))
    };

    for p in path {
        let (cx, cy) = to_cell(p.feat[proj.x_dim], p.feat[proj.y_dim]);
        grid[cy][cx] = '\u{b7}'; // ·
    }
    for (i, w) in def.poses.iter().enumerate() {
        let label = char::from_digit(((i + 1) % 36) as u32, 36).unwrap_or('#');
        let (x0, y0) = to_cell(w.min(proj.x_dim), w.max(proj.y_dim));
        let (x1, y1) = to_cell(w.max(proj.x_dim), w.min(proj.y_dim));
        for row in [y0, y1] {
            for cell in grid[row][x0..=x1].iter_mut() {
                *cell = '-';
            }
        }
        for row in grid.iter_mut().take(y1 + 1).skip(y0) {
            row[x0] = '|';
            row[x1] = '|';
        }
        grid[y0][x0] = '+';
        grid[y0][x1] = '+';
        grid[y1][x0] = '+';
        grid[y1][x1] = '+';
        let (cx, cy) = to_cell(w.center[proj.x_dim], w.center[proj.y_dim]);
        grid[cy][cx] = label;
    }

    let mut out = String::with_capacity(rows * (cols + 1) + 64);
    let _ = writeln!(
        out,
        "{} — {} poses, {} samples ({} x {})",
        def.name,
        def.pose_count(),
        def.sample_count,
        def.joints.dim_name(proj.x_dim),
        def.joints.dim_name(proj.y_dim),
    );
    for row in grid {
        out.extend(row);
        out.push('\n');
    }
    out
}

/// Renders the definition (and an optional path) as an SVG document.
pub fn svg(def: &GestureDefinition, path: &[PathPoint], width_px: usize) -> String {
    let proj = Projection::default();
    let b = bounds(def, path, proj);
    let scale = width_px as f64 / (b.max_x - b.min_x);
    let height_px = ((b.max_y - b.min_y) * scale).ceil() as usize;
    let sx = |x: f64| (x - b.min_x) * scale;
    let sy = |y: f64| (b.max_y - y) * scale;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px}" viewBox="0 0 {width_px} {height_px}">"#
    );
    let _ = writeln!(
        out,
        r#"<rect width="100%" height="100%" fill="white"/><title>{}</title>"#,
        def.name
    );
    if path.len() >= 2 {
        let pts: Vec<String> = path
            .iter()
            .map(|p| {
                format!(
                    "{:.1},{:.1}",
                    sx(p.feat[proj.x_dim]),
                    sy(p.feat[proj.y_dim])
                )
            })
            .collect();
        let _ = writeln!(
            out,
            r##"<polyline points="{}" fill="none" stroke="#888" stroke-width="1.5"/>"##,
            pts.join(" ")
        );
    }
    for (i, w) in def.poses.iter().enumerate() {
        let x = sx(w.min(proj.x_dim));
        let y = sy(w.max(proj.y_dim));
        let ww = (w.max(proj.x_dim) - w.min(proj.x_dim)) * scale;
        let wh = (w.max(proj.y_dim) - w.min(proj.y_dim)) * scale;
        let _ = writeln!(
            out,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{ww:.1}" height="{wh:.1}" fill="none" stroke="#c00" stroke-width="2"/>"##
        );
        let _ = writeln!(
            out,
            r##"<text x="{:.1}" y="{:.1}" font-size="14" fill="#c00">{}</text>"##,
            sx(w.center[proj.x_dim]),
            sy(w.center[proj.y_dim]),
            i + 1
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::JointSet;
    use crate::window::PoseWindow;

    fn def() -> GestureDefinition {
        GestureDefinition {
            name: "swipe_right".into(),
            joints: JointSet::right_hand(),
            poses: vec![
                PoseWindow::new(vec![0.0, 150.0, -120.0], vec![50.0; 3]),
                PoseWindow::new(vec![400.0, 150.0, -420.0], vec![50.0; 3]),
                PoseWindow::new(vec![800.0, 150.0, -120.0], vec![50.0; 3]),
            ],
            within_ms: vec![1000, 1000],
            active_dims: vec![true; 3],
            sample_count: 3,
        }
    }

    fn path() -> Vec<PathPoint> {
        (0..=20)
            .map(|i| PathPoint::new(i * 33, vec![i as f64 * 40.0, 150.0, -120.0]))
            .collect()
    }

    #[test]
    fn ascii_contains_labels_and_path() {
        let s = ascii(&def(), &path(), 80, 24);
        assert!(s.contains("swipe_right"));
        assert!(s.contains('1') && s.contains('2') && s.contains('3'));
        assert!(s.contains('\u{b7}'), "path dots rendered");
        assert!(s.contains('+') && s.contains('-') && s.contains('|'));
        // Fixed geometry: every line equal length.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines.len(), 24);
        assert!(lines.iter().all(|l| l.chars().count() == 80));
    }

    #[test]
    fn ascii_clamps_extreme_sizes() {
        let s = ascii(&def(), &[], 5, 2);
        assert!(s.lines().count() >= 10);
    }

    #[test]
    fn svg_well_formed() {
        let s = svg(&def(), &path(), 600);
        assert!(s.starts_with("<svg"));
        assert!(s.trim_end().ends_with("</svg>"));
        assert_eq!(s.matches("<rect").count(), 4, "background + 3 windows");
        assert_eq!(s.matches("<text").count(), 3);
        assert!(s.contains("<polyline"));
    }

    #[test]
    fn svg_without_path_omits_polyline() {
        let s = svg(&def(), &[], 600);
        assert!(!s.contains("<polyline"));
    }
}

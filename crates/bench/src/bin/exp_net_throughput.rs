//! Net — TCP-edge throughput and latency: real sockets, real client
//! *processes*, swept up to ≥10 000 concurrent connections.
//!
//! ```sh
//! cargo run --release -p gesto-bench --bin exp_net_throughput -- \
//!     [--conns 64,1024,10000] [--frames 540,135,27] [--batch 27] \
//!     [--json BENCH_net.json]
//! ```
//!
//! The server half runs in this process: a `gesto-serve` engine behind
//! a [`NetServer`]. The client half is
//! this same binary re-executed with `--client` — separate OS
//! processes, each multiplexing a slice of the connection count over
//! the `GSW1` wire protocol, so the measured path includes the real
//! kernel socket stack. Children connect everything first, report
//! `READY`, and only start streaming when the parent says `GO`; the
//! measured window is GO → last child exit.
//!
//! Reported per sweep point: ingest frames/sec over the wire, the
//! server's frame-received→detection-pushed latency histogram
//! (p50/p90/p99/max), and the peak concurrent-connection count.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::Instant;

use gesto_bench::{json_escape, registry_snapshot, Table};
use gesto_kinect::{gestures, Performer, Persona, SkeletonFrame};
use gesto_serve::net::{NetClient, NetConfig, NetServer};
use gesto_serve::{BackpressurePolicy, Server, ServerConfig};

/// Connections per client child process; sweep points larger than this
/// fan out over several children.
const CONNS_PER_CHILD: usize = 2500;

fn workload(frames: usize) -> Vec<SkeletonFrame> {
    let mut p = Performer::new(Persona::reference(), 0);
    let mut out = Vec::with_capacity(frames + 64);
    while out.len() < frames {
        out.extend(p.render_padded(&gestures::swipe_right(), 200, 400));
    }
    out.truncate(frames);
    out
}

// ----- client child ----------------------------------------------------

/// `exp_net_throughput --client <addr> <conns> <frames> <batch>`:
/// connect, report READY, await GO, stream, report RESULT.
fn client_main(args: &[String]) {
    let addr = &args[0];
    let conns: usize = args[1].parse().expect("conns");
    let frames: usize = args[2].parse().expect("frames");
    let batch: usize = args[3].parse().expect("batch");

    // Throughput clients skip event payloads (flags = 0): detections
    // still stream back (counted server-side), just without tuples.
    let mut clients: Vec<NetClient> = (0..conns)
        .map(|_| NetClient::connect_with_flags(addr.as_str(), 0).expect("connect"))
        .collect();
    println!("READY");
    std::io::stdout().flush().expect("flush");
    let mut line = String::new();
    std::io::stdin().read_line(&mut line).expect("GO");

    let frames = workload(frames);
    for chunk in frames.chunks(batch.max(1)) {
        for (session, client) in clients.iter_mut().enumerate() {
            client.send_batch(session as u64, chunk).expect("send");
        }
    }
    let mut detections = 0u64;
    let mut credit_waits = 0u64;
    for client in clients {
        credit_waits += client.credit_waits();
        detections += client.bye().expect("bye").len() as u64;
    }
    println!("RESULT detections={detections} credit_waits={credit_waits}");
}

// ----- server / orchestrator ------------------------------------------

struct PointResult {
    conns: usize,
    frames_total: u64,
    peak_active: u64,
    elapsed_ms: f64,
    fps: f64,
    detections: u64,
    credit_waits: u64,
    lat_count: u64,
    lat_p50_us: u64,
    lat_p90_us: u64,
    lat_p99_us: u64,
    lat_max_us: u64,
    lat_buckets: Vec<u64>,
    /// Flat `series name → value` snapshot of the server's metric
    /// registry at the end of the point (counters/gauges verbatim,
    /// histograms as `_count`/`_sum`), embedded in the JSON report.
    registry: Vec<(String, f64)>,
}

fn run_point(exe: &std::path::Path, conns: usize, frames: usize, batch: usize) -> PointResult {
    let server = Server::start(
        ServerConfig::new()
            .with_shards(1)
            .with_queue_capacity(256)
            .with_backpressure(BackpressurePolicy::Block),
    );
    let samples: Vec<_> = (0..3)
        .map(|seed| {
            let mut p = Performer::new(Persona::reference().with_seed(seed), 0);
            p.render(&gestures::swipe_right())
        })
        .collect();
    server.teach("swipe_right", &samples).expect("teach");
    let net = NetServer::start(
        server.handle(),
        NetConfig::new().with_max_connections(conns + 64),
    )
    .expect("net server");
    let addr = net.local_addr().to_string();

    // Fan the connection count out over child client processes.
    let children_n = conns.div_ceil(CONNS_PER_CHILD);
    let mut spawned: Vec<(Child, BufReader<std::process::ChildStdout>)> = (0..children_n)
        .map(|i| {
            let share = (conns / children_n) + usize::from(i < conns % children_n);
            let mut child = Command::new(exe)
                .args([
                    "--client",
                    &addr,
                    &share.to_string(),
                    &frames.to_string(),
                    &batch.to_string(),
                ])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn client");
            let stdout = BufReader::new(child.stdout.take().expect("child stdout"));
            (child, stdout)
        })
        .collect();

    // Barrier: every child has its full connection slice open.
    for (_, stdout) in &mut spawned {
        let mut line = String::new();
        stdout.read_line(&mut line).expect("READY");
        assert_eq!(line.trim(), "READY", "client child failed to connect");
    }
    let peak_active = net.metrics().connections_active();

    let started = Instant::now();
    for (child, _) in &mut spawned {
        child
            .stdin
            .as_mut()
            .expect("child stdin")
            .write_all(b"GO\n")
            .expect("GO");
    }
    let mut detections = 0u64;
    let mut credit_waits = 0u64;
    for (mut child, mut stdout) in spawned {
        let mut line = String::new();
        while stdout.read_line(&mut line).expect("RESULT") > 0 {
            if let Some(rest) = line.trim().strip_prefix("RESULT ") {
                for kv in rest.split_whitespace() {
                    let (k, v) = kv.split_once('=').expect("k=v");
                    let v: u64 = v.parse().expect("number");
                    match k {
                        "detections" => detections += v,
                        "credit_waits" => credit_waits += v,
                        _ => {}
                    }
                }
            }
            line.clear();
        }
        assert!(
            child.wait().expect("child").success(),
            "client child failed"
        );
    }
    let elapsed = started.elapsed();

    let m = net.metrics();
    let frames_total = (conns * frames) as u64;
    assert_eq!(m.frames_received(), frames_total, "edge lost frames");
    assert_eq!(m.connections_accepted(), conns as u64);
    assert_eq!(
        detections,
        m.detections_sent(),
        "every pushed detection reached a client"
    );
    let lat = m.latency();
    let result = PointResult {
        conns,
        frames_total,
        peak_active,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        fps: frames_total as f64 / elapsed.as_secs_f64(),
        detections,
        credit_waits,
        lat_count: lat.count(),
        lat_p50_us: lat.quantile(0.50),
        lat_p90_us: lat.quantile(0.90),
        lat_p99_us: lat.quantile(0.99),
        lat_max_us: lat.max(),
        lat_buckets: lat.buckets().to_vec(),
        registry: registry_snapshot(&server.handle().registry()),
    };
    net.shutdown();
    server.shutdown();
    result
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("--client") {
        client_main(&argv[2..]);
        return;
    }

    let mut conns: Vec<usize> = vec![64, 1024, 10_000];
    let mut frames: Vec<usize> = vec![540, 135, 27];
    let mut batch = 27usize;
    let mut json: Option<String> = None;
    let mut it = argv.into_iter().skip(1);
    while let Some(a) = it.next() {
        let list = |s: String| -> Vec<usize> {
            s.split(',').map(|v| v.parse().expect("number")).collect()
        };
        match a.as_str() {
            "--conns" => conns = list(it.next().expect("--conns N[,N…]")),
            "--frames" => frames = list(it.next().expect("--frames N[,N…]")),
            "--batch" => batch = it.next().expect("--batch N").parse().expect("number"),
            "--json" => json = Some(it.next().expect("--json PATH")),
            other => panic!("unknown argument '{other}'"),
        }
    }
    assert_eq!(
        conns.len(),
        frames.len(),
        "--conns and --frames lists must pair up"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let exe = std::env::current_exe().expect("current_exe");

    println!("Net — TCP-edge throughput over real client processes");
    println!("====================================================\n");
    println!(
        "host: {cores} core(s); sweep: conns {conns:?} × frames/conn {frames:?}, batch {batch}\n"
    );

    let mut table = Table::new(&[
        "conns",
        "frames",
        "peak act",
        "elapsed_ms",
        "frames/sec",
        "detections",
        "lat p50 µs",
        "lat p99 µs",
    ]);
    let mut results = Vec::new();
    for (&c, &f) in conns.iter().zip(&frames) {
        let r = run_point(&exe, c, f, batch);
        table.row(&[
            r.conns.to_string(),
            r.frames_total.to_string(),
            r.peak_active.to_string(),
            format!("{:.1}", r.elapsed_ms),
            format!("{:.0}", r.fps),
            r.detections.to_string(),
            r.lat_p50_us.to_string(),
            r.lat_p99_us.to_string(),
        ]);
        results.push(r);
    }
    table.print();

    if let Some(path) = &json {
        let mut rows = String::new();
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            let buckets = r
                .lat_buckets
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            let registry = r
                .registry
                .iter()
                .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
                .collect::<Vec<_>>()
                .join(", ");
            rows.push_str(&format!(
                "    {{\"connections\": {}, \"frames\": {}, \"peak_active_connections\": {}, \"elapsed_ms\": {:.1}, \"frames_per_sec\": {:.0}, \"detections\": {}, \"credit_waits\": {}, \"latency\": {{\"count\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"pow2_us_buckets\": [{buckets}]}}, \"registry\": {{{registry}}}}}",
                r.conns,
                r.frames_total,
                r.peak_active,
                r.elapsed_ms,
                r.fps,
                r.detections,
                r.credit_waits,
                r.lat_count,
                r.lat_p50_us,
                r.lat_p90_us,
                r.lat_p99_us,
                r.lat_max_us,
            ));
        }
        let json = format!(
            "{{\n  \"experiment\": \"exp_net_throughput\",\n  \"host_cores\": {cores},\n  \"batch\": {batch},\n  \"results\": [\n{rows}\n  ]\n}}\n",
        );
        std::fs::write(path, json).expect("write json");
        println!("\nwrote {path}");
    }
}

//! Operator instrumentation: tuple counters shared with the outside.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::operator::{BoxedOperator, Emit, Operator};
use crate::schema::SchemaRef;
use crate::tuple::Tuple;

/// Shared counters of an instrumented operator.
#[derive(Debug, Default)]
pub struct OpStats {
    tuples_in: AtomicU64,
    tuples_out: AtomicU64,
}

impl OpStats {
    /// Tuples the wrapped operator has consumed.
    pub fn tuples_in(&self) -> u64 {
        self.tuples_in.load(Ordering::Relaxed)
    }

    /// Tuples the wrapped operator has emitted.
    pub fn tuples_out(&self) -> u64 {
        self.tuples_out.load(Ordering::Relaxed)
    }

    /// Output/input ratio (selectivity); 0 when nothing was consumed.
    pub fn selectivity(&self) -> f64 {
        let i = self.tuples_in();
        if i == 0 {
            0.0
        } else {
            self.tuples_out() as f64 / i as f64
        }
    }
}

/// Wraps an operator and counts tuples in/out.
pub struct Metered {
    inner: BoxedOperator,
    stats: Arc<OpStats>,
}

impl Metered {
    /// Wraps `inner`; returns the wrapper and the shared stats handle.
    pub fn new(inner: BoxedOperator) -> (Self, Arc<OpStats>) {
        let stats = Arc::new(OpStats::default());
        (
            Self {
                inner,
                stats: stats.clone(),
            },
            stats,
        )
    }
}

impl Operator for Metered {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn output_schema(&self) -> SchemaRef {
        self.inner.output_schema()
    }

    fn process(&mut self, tuple: &Tuple, emit: &mut Emit<'_>) {
        self.stats.tuples_in.fetch_add(1, Ordering::Relaxed);
        let stats = self.stats.clone();
        let mut counting = |t: Tuple| {
            stats.tuples_out.fetch_add(1, Ordering::Relaxed);
            emit(t);
        };
        self.inner.process(tuple, &mut counting);
    }

    fn finish(&mut self, emit: &mut Emit<'_>) {
        let stats = self.stats.clone();
        let mut counting = |t: Tuple| {
            stats.tuples_out.fetch_add(1, Ordering::Relaxed);
            emit(t);
        };
        self.inner.finish(&mut counting);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::run_operator;
    use crate::ops::FilterOp;
    use crate::schema::SchemaBuilder;
    use crate::value::Value;

    #[test]
    fn counts_in_and_out() {
        let schema = SchemaBuilder::new("s").int("a").build().unwrap();
        let filter = FilterOp::new("even", schema.clone(), |t| t.i64("a").unwrap() % 2 == 0);
        let (mut metered, stats) = Metered::new(Box::new(filter));
        let input: Vec<_> = (0..10)
            .map(|i| Tuple::new(schema.clone(), vec![Value::Int(i)]).unwrap())
            .collect();
        run_operator(&mut metered, &input);
        assert_eq!(stats.tuples_in(), 10);
        assert_eq!(stats.tuples_out(), 5);
        assert!((stats.selectivity() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn selectivity_zero_when_idle() {
        let stats = OpStats::default();
        assert_eq!(stats.selectivity(), 0.0);
    }
}

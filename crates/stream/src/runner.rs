//! Threaded pipeline runner built on crossbeam channels.
//!
//! Most of the repository uses the deterministic in-thread [`crate::Chain`]
//! runner; this module provides the asynchronous flavour used when a live
//! source (e.g. the simulator replaying in real time) must not block the
//! consumer.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};

use crate::error::StreamError;
use crate::pipeline::Chain;
use crate::tuple::Tuple;

/// Handle to a chain running on its own thread.
///
/// Tuples sent via [`ThreadedRunner::send`] are processed in order; outputs
/// are delivered on the `outputs` receiver. Dropping the handle (or calling
/// [`ThreadedRunner::close`]) flushes buffered operator state and joins the
/// worker.
pub struct ThreadedRunner {
    input: Option<Sender<Tuple>>,
    outputs: Receiver<Tuple>,
    handle: Option<JoinHandle<()>>,
    dropped: usize,
}

impl ThreadedRunner {
    /// Spawns `chain` on a worker thread with a bounded input queue of
    /// `queue_len` tuples.
    ///
    /// The input queue is bounded (producer backpressure / load
    /// shedding); the output channel is unbounded so the worker can never
    /// block on a slow consumer — otherwise a producer blocked on the
    /// full input queue and a worker blocked on a full output queue would
    /// deadlock.
    pub fn spawn(mut chain: Chain, queue_len: usize) -> Self {
        let (in_tx, in_rx) = bounded::<Tuple>(queue_len.max(1));
        let (out_tx, out_rx) = unbounded::<Tuple>();
        let handle = std::thread::Builder::new()
            .name("gesto-stream-runner".into())
            .spawn(move || {
                for t in in_rx.iter() {
                    for out in chain.push(&t) {
                        if out_tx.send(out).is_err() {
                            return;
                        }
                    }
                }
                // Input closed: flush buffered state.
                let mut tail = Vec::new();
                {
                    let mut emit = |t: Tuple| tail.push(t);
                    use crate::operator::Operator;
                    chain.finish(&mut emit);
                }
                for out in tail {
                    if out_tx.send(out).is_err() {
                        return;
                    }
                }
            })
            .expect("spawn stream runner thread");
        Self {
            input: Some(in_tx),
            outputs: out_rx,
            handle: Some(handle),
            dropped: 0,
        }
    }

    /// Sends a tuple, blocking if the queue is full.
    pub fn send(&self, t: Tuple) -> Result<(), StreamError> {
        self.input
            .as_ref()
            .ok_or(StreamError::Closed)?
            .send(t)
            .map_err(|_| StreamError::Closed)
    }

    /// Sends without blocking; drops the tuple (load shedding) when the
    /// queue is full and records it.
    pub fn send_lossy(&mut self, t: Tuple) -> Result<bool, StreamError> {
        match self.input.as_ref().ok_or(StreamError::Closed)?.try_send(t) {
            Ok(()) => Ok(true),
            Err(TrySendError::Full(_)) => {
                self.dropped += 1;
                Ok(false)
            }
            Err(TrySendError::Disconnected(_)) => Err(StreamError::Closed),
        }
    }

    /// Number of tuples shed by [`Self::send_lossy`].
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Receiver of the chain's outputs.
    pub fn outputs(&self) -> &Receiver<Tuple> {
        &self.outputs
    }

    /// Closes the input, flushes and joins; returns remaining outputs.
    pub fn close(mut self) -> Vec<Tuple> {
        self.input.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.outputs.try_iter().collect()
    }

    /// Blocks until the next output (or `None` once the worker finished
    /// and all outputs were consumed).
    pub fn recv(&self) -> Option<Tuple> {
        self.outputs.recv().ok()
    }
}

impl Drop for ThreadedRunner {
    fn drop(&mut self) {
        self.input.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::MapOp;
    use crate::schema::SchemaBuilder;
    use crate::value::Value;

    #[test]
    fn runs_chain_on_thread_and_flushes() {
        let schema = SchemaBuilder::new("s").float("x").build().unwrap();
        let s2 = schema.clone();
        let chain = Chain::new("c").then(MapOp::new("x*10", schema.clone(), move |t| {
            Some(Tuple::new_unchecked(
                s2.clone(),
                vec![Value::Float(t.f64("x").unwrap() * 10.0)],
            ))
        }));
        let runner = ThreadedRunner::spawn(chain, 8);
        for i in 0..100 {
            runner
                .send(Tuple::new(schema.clone(), vec![Value::Float(i as f64)]).unwrap())
                .unwrap();
        }
        let mut got = Vec::new();
        // Drain while the worker runs, then close for the tail.
        while got.len() < 50 {
            if let Ok(t) = runner.outputs().recv() {
                got.push(t);
            }
        }
        got.extend(runner.close());
        assert_eq!(got.len(), 100);
        assert_eq!(got[99].f64("x"), Some(990.0));
    }

    #[test]
    fn send_after_close_fails() {
        let schema = SchemaBuilder::new("s").float("x").build().unwrap();
        let chain = Chain::new("c");
        let runner = ThreadedRunner::spawn(chain, 2);
        let t = Tuple::new(schema, vec![Value::Float(0.0)]).unwrap();
        runner.send(t).unwrap();
        let _ = runner.close();
    }
}

//! The built-in gesture library.
//!
//! Each [`GestureSpec`] describes the *intended* movement in user-local
//! gesture space (x = user's right, y = up, z = depth relative to the
//! torso, negative in front; reference-body millimetres). The
//! [`crate::Performer`] renders specs into camera-space skeleton streams
//! for arbitrary users.
//!
//! The `swipe_right` spec reproduces Fig. 1: start (0, 150, −120), bow
//! forward through (400, 150, −420), end (800, 150, −120). `circle`
//! follows the five Fig. 2 windows. `wave` and `two_hand_swipe` are the
//! paper's control gestures (§3.1).

use serde::{Deserialize, Serialize};

use crate::joints::Joint;
use crate::trajectory::{PathSpec, TimeProfile};
use crate::vec3::Vec3;

/// A gesture: one or more joints moving along paths over a duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GestureSpec {
    /// Gesture name (used as the learned query name).
    pub name: String,
    /// Moving joints and their paths; joints not listed stay in the rest
    /// pose.
    pub channels: Vec<(Joint, PathSpec)>,
    /// Nominal duration in milliseconds (tempo 1.0).
    pub duration_ms: i64,
    /// Timing profile.
    pub profile: TimeProfile,
}

impl GestureSpec {
    /// Single-joint gesture.
    pub fn single(name: impl Into<String>, joint: Joint, path: PathSpec, duration_ms: i64) -> Self {
        Self {
            name: name.into(),
            channels: vec![(joint, path)],
            duration_ms,
            profile: TimeProfile::MinJerk,
        }
    }

    /// The joints this gesture moves.
    pub fn joints(&self) -> Vec<Joint> {
        self.channels.iter().map(|(j, _)| *j).collect()
    }
}

/// Fig. 1 swipe: right hand left-to-right at chest height, bowing towards
/// the camera.
pub fn swipe_right() -> GestureSpec {
    GestureSpec::single(
        "swipe_right",
        Joint::RightHand,
        PathSpec::Spline(vec![
            Vec3::new(0.0, 150.0, -120.0),
            Vec3::new(400.0, 150.0, -420.0),
            Vec3::new(800.0, 150.0, -120.0),
        ]),
        900,
    )
}

/// Mirror of [`swipe_right`], performed with the left hand.
pub fn swipe_left() -> GestureSpec {
    GestureSpec::single(
        "swipe_left",
        Joint::LeftHand,
        PathSpec::Spline(vec![
            Vec3::new(0.0, 150.0, -120.0),
            Vec3::new(-400.0, 150.0, -420.0),
            Vec3::new(-800.0, 150.0, -120.0),
        ]),
        900,
    )
}

/// Right hand rising from hip to overhead in front of the user.
pub fn swipe_up() -> GestureSpec {
    GestureSpec::single(
        "swipe_up",
        Joint::RightHand,
        PathSpec::Spline(vec![
            Vec3::new(250.0, -150.0, -250.0),
            Vec3::new(280.0, 250.0, -400.0),
            Vec3::new(250.0, 650.0, -250.0),
        ]),
        900,
    )
}

/// Right hand dropping from overhead to hip.
pub fn swipe_down() -> GestureSpec {
    GestureSpec::single(
        "swipe_down",
        Joint::RightHand,
        PathSpec::Spline(vec![
            Vec3::new(250.0, 650.0, -250.0),
            Vec3::new(280.0, 250.0, -400.0),
            Vec3::new(250.0, -150.0, -250.0),
        ]),
        900,
    )
}

/// Straight push towards the camera at chest height.
pub fn push() -> GestureSpec {
    GestureSpec::single(
        "push",
        Joint::RightHand,
        PathSpec::Waypoints(vec![
            Vec3::new(100.0, 150.0, -150.0),
            Vec3::new(100.0, 150.0, -520.0),
        ]),
        700,
    )
}

/// Pull back from extended arm to the chest.
pub fn pull() -> GestureSpec {
    GestureSpec::single(
        "pull",
        Joint::RightHand,
        PathSpec::Waypoints(vec![
            Vec3::new(100.0, 150.0, -520.0),
            Vec3::new(100.0, 150.0, -150.0),
        ]),
        700,
    )
}

/// Full frontal circle with the right hand (Fig. 2 gesture-database
/// example), drawn clockwise starting at the top.
pub fn circle() -> GestureSpec {
    GestureSpec {
        name: "circle".into(),
        channels: vec![(
            Joint::RightHand,
            PathSpec::Circle {
                center: Vec3::new(300.0, 225.0, -150.0),
                radius: 350.0,
                start_angle: std::f64::consts::FRAC_PI_2,
                turns: -1.0,
            },
        )],
        duration_ms: 2000,
        profile: TimeProfile::Linear,
    }
}

/// Wave: hand raised, oscillating laterally (the §3.1 control gesture
/// that starts recording).
pub fn wave() -> GestureSpec {
    GestureSpec {
        name: "wave".into(),
        channels: vec![(
            Joint::RightHand,
            PathSpec::Oscillation {
                center: Vec3::new(250.0, 450.0, -200.0),
                amplitude: 160.0,
                cycles: 2.0,
            },
        )],
        duration_ms: 1400,
        profile: TimeProfile::Linear,
    }
}

/// Both hands rising simultaneously.
pub fn raise_both_hands() -> GestureSpec {
    GestureSpec {
        name: "raise_both_hands".into(),
        channels: vec![
            (
                Joint::RightHand,
                PathSpec::Waypoints(vec![
                    Vec3::new(220.0, -200.0, -150.0),
                    Vec3::new(250.0, 550.0, -250.0),
                ]),
            ),
            (
                Joint::LeftHand,
                PathSpec::Waypoints(vec![
                    Vec3::new(-220.0, -200.0, -150.0),
                    Vec3::new(-250.0, 550.0, -250.0),
                ]),
            ),
        ],
        duration_ms: 900,
        profile: TimeProfile::MinJerk,
    }
}

/// Both hands swiping outwards — the §3.1 control gesture that finalises
/// learning.
pub fn two_hand_swipe() -> GestureSpec {
    GestureSpec {
        name: "two_hand_swipe".into(),
        channels: vec![
            (
                Joint::RightHand,
                PathSpec::Waypoints(vec![
                    Vec3::new(120.0, 150.0, -300.0),
                    Vec3::new(650.0, 150.0, -200.0),
                ]),
            ),
            (
                Joint::LeftHand,
                PathSpec::Waypoints(vec![
                    Vec3::new(-120.0, 150.0, -300.0),
                    Vec3::new(-650.0, 150.0, -200.0),
                ]),
            ),
        ],
        duration_ms: 800,
        profile: TimeProfile::MinJerk,
    }
}

/// A zig-zag stroke, useful as a deliberately overlapping pattern for the
/// §3.3.2 overlap experiments.
pub fn zigzag() -> GestureSpec {
    GestureSpec::single(
        "zigzag",
        Joint::RightHand,
        PathSpec::Waypoints(vec![
            Vec3::new(0.0, 100.0, -200.0),
            Vec3::new(280.0, 420.0, -200.0),
            Vec3::new(540.0, 100.0, -200.0),
            Vec3::new(800.0, 420.0, -200.0),
        ]),
        1400,
    )
}

/// All built-in gestures.
pub fn standard_library() -> Vec<GestureSpec> {
    vec![
        swipe_right(),
        swipe_left(),
        swipe_up(),
        swipe_down(),
        push(),
        pull(),
        circle(),
        wave(),
        raise_both_hands(),
        two_hand_swipe(),
        zigzag(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_names_unique_and_nonempty() {
        let lib = standard_library();
        assert!(lib.len() >= 10);
        let mut names: Vec<_> = lib.iter().map(|g| g.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), lib.len());
        for g in &lib {
            assert!(!g.channels.is_empty(), "{} has no channels", g.name);
            assert!(g.duration_ms > 0);
        }
    }

    #[test]
    fn swipe_right_matches_fig1_endpoints() {
        let g = swipe_right();
        let (_, path) = &g.channels[0];
        assert!(path.start().dist(&Vec3::new(0.0, 150.0, -120.0)) < 1e-9);
        assert!(path.end().dist(&Vec3::new(800.0, 150.0, -120.0)) < 1e-9);
        // Midpoint bows forward (more negative z).
        assert!(path.at(0.5).z < -400.0);
    }

    #[test]
    fn two_hand_gestures_move_both_hands() {
        for g in [raise_both_hands(), two_hand_swipe()] {
            let joints = g.joints();
            assert!(joints.contains(&Joint::RightHand));
            assert!(joints.contains(&Joint::LeftHand));
        }
    }

    #[test]
    fn paths_stay_within_plausible_reach() {
        // Reference arm reach ~580mm from the shoulder; gesture space is
        // torso-relative, so allow shoulder offset + reach ≈ 950mm.
        for g in standard_library() {
            for (_, path) in &g.channels {
                for i in 0..=50 {
                    let p = path.at(i as f64 / 50.0);
                    assert!(
                        p.norm() < 1000.0,
                        "{}: point {:?} beyond plausible reach",
                        g.name,
                        p
                    );
                }
            }
        }
    }
}

//! Adversarial chaos scenario library for the self-healing data plane.
//!
//! Each **persona** is a hostile or degenerate client population run
//! against a live server — through the in-process `push_batch` path
//! and/or over real TCP through the GSW1 edge — with hard assertions on
//! the robustness invariants (`docs/ARCHITECTURE.md` §9):
//!
//! - **conservation**: every frame a producer handed over lands in
//!   exactly one bucket —
//!   `sent = frames_in + shed + stale + quota + quarantined`;
//! - **exactly-once**: under the lossless (`Block`) policy, detections
//!   equal an uninjected reference run, per session;
//! - **bounded recovery**: an injected worker panic is survived with
//!   one counted session reset and a respawn within the deadline, the
//!   process serving throughout.
//!
//! The library is consumed by the `exp_chaos` experiment binary (full
//! sweep + overhead A/B, `BENCH_robustness.json`) and by CI's chaos
//! smoke step (two personas, short duration).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gesto_kinect::{gestures, Performer, Persona, SkeletonFrame};
use gesto_serve::net::{NetClient, NetConfig, NetServer};
use gesto_serve::{failpoint, BackpressurePolicy, Server, ServerConfig, ServerMetrics, SessionId};

/// Every persona in the library, in canonical order.
pub const PERSONAS: [&str; 6] = [
    "bursty",
    "high_null",
    "never_matching",
    "deploy_churn",
    "slow_consumer",
    "panic_injection",
];

/// How a persona reaches the server.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosDriver {
    /// Direct `ServerHandle::push_batch` on producer threads.
    InProcess,
    /// A real `NetClient` over TCP through the GSW1 edge.
    Wire,
}

impl ChaosDriver {
    pub fn as_str(self) -> &'static str {
        match self {
            ChaosDriver::InProcess => "in_process",
            ChaosDriver::Wire => "wire",
        }
    }
}

/// The drivers a persona supports (`slow_consumer` is wire-only: its
/// adversary is the connection itself).
pub fn drivers_for(persona: &str) -> &'static [ChaosDriver] {
    match persona {
        "slow_consumer" => &[ChaosDriver::Wire],
        _ => &[ChaosDriver::InProcess, ChaosDriver::Wire],
    }
}

/// Workload size knobs (`smoke` for CI, `full` for the committed
/// report).
#[derive(Clone, Copy)]
pub struct ChaosScale {
    /// Frames per session, before persona-specific inflation.
    pub frames: usize,
    /// Wire batch / in-process push granularity.
    pub batch: usize,
}

impl ChaosScale {
    pub fn smoke() -> Self {
        ChaosScale {
            frames: 300,
            batch: 33,
        }
    }
    pub fn full() -> Self {
        ChaosScale {
            frames: 1500,
            batch: 33,
        }
    }
}

/// The measured outcome of one persona × driver run. Constructed only
/// after every invariant assert held — reaching a value means the
/// scenario passed.
pub struct ChaosOutcome {
    pub persona: &'static str,
    pub driver: &'static str,
    pub sessions: usize,
    pub frames_sent: u64,
    pub frames_in: u64,
    pub shed_frames: u64,
    pub stale_frames: u64,
    pub quota_frames: u64,
    pub quarantined_frames: u64,
    pub detections: u64,
    /// Reference detections under the exactly-once contract (`None`
    /// for lossy scenarios, where only conservation is asserted).
    pub expected_detections: Option<u64>,
    /// Injected panic → worker respawned and ready again.
    pub recovery_ms: Option<f64>,
    pub elapsed_ms: f64,
}

impl ChaosOutcome {
    /// The conservation identity every scenario must satisfy.
    pub fn conserved(&self) -> bool {
        self.frames_in
            + self.shed_frames
            + self.stale_frames
            + self.quota_frames
            + self.quarantined_frames
            == self.frames_sent
    }
}

// ----- workloads ------------------------------------------------------

/// Repeated clean swipe performances, timestamps strictly increasing.
pub fn swipe_workload(frames: usize, seed: u64) -> Vec<SkeletonFrame> {
    let mut p = Performer::new(Persona::reference().with_seed(seed), 0);
    let mut out = Vec::with_capacity(frames + 64);
    while out.len() < frames {
        out.extend(p.render_padded(&gestures::swipe_right(), 200, 400));
    }
    out.truncate(frames);
    out
}

/// A high-null stream: every real frame followed by `nulls` empty
/// (all-joints-invalid) frames with strictly increasing timestamps —
/// a sensor dropping most of its skeleton fixes.
fn null_heavy_workload(frames: usize, seed: u64, nulls: i64) -> Vec<SkeletonFrame> {
    let base = swipe_workload(frames, seed);
    let mut out = Vec::with_capacity(base.len() * (nulls as usize + 1));
    for f in base {
        let (ts, player) = (f.ts, f.player);
        out.push(f);
        for k in 1..=nulls {
            // Kinect frames arrive ~33 ms apart; nulls fit in between.
            out.push(SkeletonFrame::empty(ts + k, player));
        }
    }
    out
}

/// A pathological never-matching stream: one frozen pose forever. Runs
/// seed, never complete, and must be aged out rather than accumulated.
fn frozen_workload(frames: usize, seed: u64) -> Vec<SkeletonFrame> {
    let base = swipe_workload(64, seed);
    let pose = base[0].clone();
    (0..frames as i64)
        .map(|i| {
            let mut f = pose.clone();
            f.ts = pose.ts + i * 33;
            f
        })
        .collect()
}

fn teach_swipe(server: &Server) {
    let samples: Vec<Vec<SkeletonFrame>> = (0..3)
        .map(|seed| {
            let mut p = Performer::new(Persona::reference().with_seed(seed), 0);
            p.render(&gestures::swipe_right())
        })
        .collect();
    server.teach("swipe_right", &samples).expect("teach");
}

// ----- the rig --------------------------------------------------------

/// One live server plus the driver-specific way in and out.
struct Rig {
    server: Server,
    net: Option<NetServer>,
    client: Option<NetClient>,
    /// Per-session detection counts (in-process sink; the wire driver
    /// counts from the client's detection stream at `finish`).
    counts: Arc<Mutex<HashMap<u64, u64>>>,
}

impl Rig {
    fn new(config: ServerConfig, driver: ChaosDriver, net_config: NetConfig) -> Rig {
        let server = Server::start(config);
        teach_swipe(&server);
        let counts = Arc::new(Mutex::new(HashMap::new()));
        let (net, client) = match driver {
            ChaosDriver::InProcess => {
                let sink = counts.clone();
                server.on_detection(Arc::new(move |sid, _d| {
                    *sink.lock().unwrap().entry(sid.0).or_insert(0) += 1;
                }));
                (None, None)
            }
            ChaosDriver::Wire => {
                let net = NetServer::start(server.handle(), net_config).expect("edge");
                let client = NetClient::connect(net.local_addr()).expect("connect");
                (Some(net), Some(client))
            }
        };
        Rig {
            server,
            net,
            client,
            counts,
        }
    }

    fn send(&mut self, session: u64, frames: &[SkeletonFrame]) {
        match &mut self.client {
            Some(c) => c.send_batch(session, frames).expect("wire send"),
            None => self
                .server
                .push_batch(SessionId(session), frames.to_vec())
                .expect("push"),
        }
    }

    /// Drains the server (and the wire client), returning final server
    /// metrics and per-session detection counts.
    fn finish(mut self) -> (ServerMetrics, HashMap<u64, u64>) {
        if let Some(client) = self.client.take() {
            for d in client.bye().expect("bye") {
                *self.counts.lock().unwrap().entry(d.session).or_insert(0) += 1;
            }
        }
        self.server.drain().expect("drain");
        let metrics = self.server.metrics();
        if let Some(net) = self.net.take() {
            net.shutdown();
        }
        self.server.shutdown();
        (metrics, self.counts.lock().unwrap().clone())
    }
}

/// Uninjected reference: the same per-session workloads through a
/// plain lossless 1-shard in-process server; returns per-session
/// detection counts — the exactly-once yardstick.
fn reference_counts(workloads: &[(u64, Vec<SkeletonFrame>)], batch: usize) -> HashMap<u64, u64> {
    let mut rig = Rig::new(
        ServerConfig::new()
            .with_shards(1)
            .with_backpressure(BackpressurePolicy::Block),
        ChaosDriver::InProcess,
        NetConfig::new(),
    );
    for (sid, frames) in workloads {
        for chunk in frames.chunks(batch) {
            rig.send(*sid, chunk);
        }
    }
    rig.finish().1
}

fn sum_counts(counts: &HashMap<u64, u64>) -> u64 {
    counts.values().sum()
}

#[allow(clippy::too_many_arguments)] // one call site per persona; a builder would only add noise
fn outcome(
    persona: &'static str,
    driver: ChaosDriver,
    sessions: usize,
    frames_sent: u64,
    m: &ServerMetrics,
    detections: u64,
    expected: Option<u64>,
    recovery_ms: Option<f64>,
    started: Instant,
) -> ChaosOutcome {
    let out = ChaosOutcome {
        persona,
        driver: driver.as_str(),
        sessions,
        frames_sent,
        frames_in: m.frames_in(),
        shed_frames: m.shed_frames(),
        stale_frames: m.shards.iter().map(|s| s.stale_frames).sum(),
        quota_frames: m.shards.iter().map(|s| s.quota_frames).sum(),
        quarantined_frames: m.quarantined_frames(),
        detections,
        expected_detections: expected,
        recovery_ms,
        elapsed_ms: started.elapsed().as_secs_f64() * 1e3,
    };
    assert!(
        out.conserved(),
        "{persona}/{}: conservation broken: sent {} != in {} + shed {} + stale {} + quota {} + quarantined {}",
        out.driver,
        out.frames_sent,
        out.frames_in,
        out.shed_frames,
        out.stale_frames,
        out.quota_frames,
        out.quarantined_frames
    );
    if let Some(exp) = expected {
        assert_eq!(
            detections, exp,
            "{persona}/{}: exactly-once broken ({} detections, expected {})",
            out.driver, detections, exp
        );
    }
    out
}

// ----- personas -------------------------------------------------------

/// Runs one persona under one driver; panics if any invariant breaks.
pub fn run_persona(persona: &str, driver: ChaosDriver, scale: ChaosScale) -> ChaosOutcome {
    match persona {
        "bursty" => bursty(driver, scale),
        "high_null" => high_null(driver, scale),
        "never_matching" => never_matching(driver, scale),
        "deploy_churn" => deploy_churn(driver, scale),
        "slow_consumer" => slow_consumer(scale),
        "panic_injection" => panic_injection(driver, scale),
        other => panic!("unknown persona '{other}'"),
    }
}

/// Bursty arrivals against a tiny queue under `DropOldest` with a
/// staleness deadline and a per-session frame quota: all three shedding
/// paths (oldest-batch, stale-batch, quota) may fire; conservation must
/// hold exactly whatever the mix.
fn bursty(driver: ChaosDriver, scale: ChaosScale) -> ChaosOutcome {
    let sessions = 4u64;
    let started = Instant::now();
    let mut rig = Rig::new(
        ServerConfig::new()
            .with_shards(1)
            .with_queue_capacity(4)
            .with_backpressure(BackpressurePolicy::DropOldest)
            .with_max_batch_age_ms(20)
            .with_session_frame_quota(2_000),
        driver,
        NetConfig::new(),
    );
    let workloads: Vec<(u64, Vec<SkeletonFrame>)> = (0..sessions)
        .map(|s| (s, swipe_workload(scale.frames, 100 + s)))
        .collect();
    let frames_sent: u64 = workloads.iter().map(|(_, w)| w.len() as u64).sum();
    // Tight bursts, all sessions interleaved, no pacing: the queue is
    // permanently over capacity.
    let mut offset = 0;
    loop {
        let mut pushed = false;
        for (sid, frames) in &workloads {
            if offset < frames.len() {
                let end = (offset + scale.batch).min(frames.len());
                rig.send(*sid, &frames[offset..end]);
                pushed = true;
            }
        }
        if !pushed {
            break;
        }
        offset += scale.batch;
    }
    let (m, counts) = rig.finish();
    outcome(
        "bursty",
        driver,
        sessions as usize,
        frames_sent,
        &m,
        sum_counts(&counts),
        None, // lossy by design: conservation, not exactly-once
        None,
        started,
    )
}

/// Streams that are mostly empty frames (a sensor losing skeleton
/// fixes): the pipeline must not lose, duplicate or misattribute the
/// real detections buried in the nulls.
fn high_null(driver: ChaosDriver, scale: ChaosScale) -> ChaosOutcome {
    let sessions = 2u64;
    let started = Instant::now();
    let workloads: Vec<(u64, Vec<SkeletonFrame>)> = (0..sessions)
        .map(|s| (s, null_heavy_workload(scale.frames / 2, 300 + s, 3)))
        .collect();
    let expected = sum_counts(&reference_counts(&workloads, scale.batch));
    let mut rig = Rig::new(
        ServerConfig::new()
            .with_shards(2)
            .with_backpressure(BackpressurePolicy::Block),
        driver,
        NetConfig::new(),
    );
    let frames_sent: u64 = workloads.iter().map(|(_, w)| w.len() as u64).sum();
    for (sid, frames) in &workloads {
        for chunk in frames.chunks(scale.batch) {
            rig.send(*sid, chunk);
        }
    }
    let (m, counts) = rig.finish();
    assert!(
        expected > 0,
        "high_null workload must embed real detections"
    );
    outcome(
        "high_null",
        driver,
        sessions as usize,
        frames_sent,
        &m,
        sum_counts(&counts),
        Some(expected),
        None,
        started,
    )
}

/// Pathological sessions that never match: partial runs seed forever
/// and must be aged out — resident NFA state has to stay bounded, and
/// nothing may be detected.
fn never_matching(driver: ChaosDriver, scale: ChaosScale) -> ChaosOutcome {
    let sessions = 2u64;
    let started = Instant::now();
    let mut rig = Rig::new(
        ServerConfig::new()
            .with_shards(1)
            .with_backpressure(BackpressurePolicy::Block),
        driver,
        NetConfig::new(),
    );
    let workloads: Vec<(u64, Vec<SkeletonFrame>)> = (0..sessions)
        .map(|s| (s, frozen_workload(scale.frames, 400 + s)))
        .collect();
    let frames_sent: u64 = workloads.iter().map(|(_, w)| w.len() as u64).sum();
    for (sid, frames) in &workloads {
        for chunk in frames.chunks(scale.batch) {
            rig.send(*sid, chunk);
        }
    }
    // Bounded state: the resident run-slab gauge must not grow with the
    // stream (generous absolute cap — the point is "not O(frames)").
    let state_bytes: f64 = crate::registry_snapshot(&rig.server.handle().registry())
        .iter()
        .filter(|(k, _)| k.starts_with("gesto_shard_state_bytes"))
        .map(|(_, v)| *v)
        .sum();
    assert!(
        state_bytes < 32.0 * 1024.0 * 1024.0,
        "never-matching sessions accumulated {state_bytes} bytes of NFA state"
    );
    let (m, counts) = rig.finish();
    outcome(
        "never_matching",
        driver,
        sessions as usize,
        frames_sent,
        &m,
        sum_counts(&counts),
        Some(0), // a frozen pose must never detect
        None,
        started,
    )
}

/// Deploy churn under load: a second (never-matching) query is
/// deployed and undeployed continuously while sessions stream; the
/// stable gesture's detections must be exactly those of a churn-free
/// run, and no frame may be lost.
fn deploy_churn(driver: ChaosDriver, scale: ChaosScale) -> ChaosOutcome {
    let sessions = 4u64;
    let started = Instant::now();
    let workloads: Vec<(u64, Vec<SkeletonFrame>)> = (0..sessions)
        .map(|s| (s, swipe_workload(scale.frames, 500 + s)))
        .collect();
    let expected = sum_counts(&reference_counts(&workloads, scale.batch));
    let mut rig = Rig::new(
        ServerConfig::new()
            .with_shards(2)
            .with_backpressure(BackpressurePolicy::Block),
        driver,
        NetConfig::new(),
    );
    let frames_sent: u64 = workloads.iter().map(|(_, w)| w.len() as u64).sum();
    let handle = rig.server.handle();
    // Deterministic churn: one deploy/undeploy cycle of a never-matching
    // query between every round of batches — each cycle rebroadcasts a
    // new plan version into workers whose queues are mid-stream.
    let mut cycles = 0u64;
    let mut offset = 0;
    while offset < scale.frames {
        for (sid, frames) in &workloads {
            let end = (offset + scale.batch).min(frames.len());
            rig.send(*sid, &frames[offset..end]);
        }
        handle
            .deploy_text(r#"SELECT "churn" MATCHING kinect(head_y > 1000000000.0);"#)
            .expect("churn deploy");
        handle.undeploy("churn").expect("churn undeploy");
        cycles += 1;
        offset += scale.batch;
    }
    assert!(cycles > 0, "deploy churn never cycled");
    let (m, counts) = rig.finish();
    outcome(
        "deploy_churn",
        driver,
        sessions as usize,
        frames_sent,
        &m,
        sum_counts(&counts),
        Some(expected),
        None,
        started,
    )
}

/// A slow-reading consumer (wire only): a small credit window forces
/// the client to stall on server backpressure, and detections pile up
/// unread until the end — nothing may be lost on either direction.
fn slow_consumer(scale: ChaosScale) -> ChaosOutcome {
    let started = Instant::now();
    let workloads: Vec<(u64, Vec<SkeletonFrame>)> = vec![(0, swipe_workload(scale.frames, 600))];
    let expected = sum_counts(&reference_counts(&workloads, scale.batch));
    let mut rig = Rig::new(
        ServerConfig::new()
            .with_shards(1)
            .with_queue_capacity(2)
            .with_backpressure(BackpressurePolicy::Block),
        ChaosDriver::Wire,
        NetConfig::new().with_initial_credits(64),
    );
    let frames_sent = workloads[0].1.len() as u64;
    for chunk in workloads[0].1.chunks(scale.batch) {
        rig.send(0, chunk);
    }
    let stalls = rig.client.as_ref().map(|c| c.credit_waits()).unwrap_or(0);
    assert!(
        stalls > 0,
        "slow consumer never hit credit backpressure — the scenario did not bite"
    );
    let (m, counts) = rig.finish();
    outcome(
        "slow_consumer",
        ChaosDriver::Wire,
        1,
        frames_sent,
        &m,
        sum_counts(&counts),
        Some(expected),
        None,
        started,
    )
}

/// An injected shard-worker panic mid-load: the poisoned batch is
/// quarantined, only its session resets, the worker respawns within the
/// deadline, and the bystander sessions' detections are exactly those
/// of an uninjected run.
fn panic_injection(driver: ChaosDriver, scale: ChaosScale) -> ChaosOutcome {
    const POISON_TS: i64 = 777_000_000_000;
    const VICTIM: u64 = 1;
    const RECOVERY_DEADLINE: Duration = Duration::from_secs(5);
    let started = Instant::now();
    let bystanders = [2u64, 3u64];
    let halves: Vec<(u64, Vec<SkeletonFrame>, Vec<SkeletonFrame>)> = bystanders
        .iter()
        .map(|&s| {
            let w = swipe_workload(scale.frames, 700 + s);
            let mid = w.len() / 2;
            (s, w[..mid].to_vec(), w[mid..].to_vec())
        })
        .collect();
    let reference: Vec<(u64, Vec<SkeletonFrame>)> = halves
        .iter()
        .map(|(s, a, b)| {
            let mut w = a.clone();
            w.extend(b.iter().cloned());
            (*s, w)
        })
        .collect();
    let expected_by_session = reference_counts(&reference, scale.batch);

    let mut rig = Rig::new(
        ServerConfig::new()
            .with_shards(1)
            .with_backpressure(BackpressurePolicy::Block),
        driver,
        NetConfig::new(),
    );
    for (sid, first, _) in &halves {
        for chunk in first.chunks(scale.batch) {
            rig.send(*sid, chunk);
        }
    }

    let trips_before = failpoint::poison_trips();
    let restarts_before = rig.server.metrics().restarts();
    failpoint::set_respawn_delay_ms(25);
    failpoint::arm_poison_ts(POISON_TS);
    let mut poison = swipe_workload(8, 999);
    poison[0].ts = POISON_TS;
    let injected_at = Instant::now();
    rig.send(VICTIM, &poison);

    // Bounded recovery: the replacement worker generation must be up
    // (ready, plans rebroadcast) within the deadline.
    let handle = rig.server.handle();
    loop {
        let m = rig.server.metrics();
        if m.restarts() == restarts_before + 1 && handle.is_ready() {
            break;
        }
        assert!(
            injected_at.elapsed() < RECOVERY_DEADLINE,
            "worker did not recover within {RECOVERY_DEADLINE:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let recovery_ms = injected_at.elapsed().as_secs_f64() * 1e3;
    failpoint::set_respawn_delay_ms(0);
    assert_eq!(
        failpoint::poison_trips(),
        trips_before + 1,
        "failpoint must fire exactly once"
    );

    for (sid, _, second) in &halves {
        for chunk in second.chunks(scale.batch) {
            rig.send(*sid, chunk);
        }
    }
    let frames_sent: u64 = halves
        .iter()
        .map(|(_, a, b)| (a.len() + b.len()) as u64)
        .sum::<u64>()
        + poison.len() as u64;
    let (m, counts) = rig.finish();

    assert_eq!(m.panics(), 1, "exactly one injected panic");
    assert_eq!(m.sessions_reset(), 1, "only the poisoned session resets");
    assert_eq!(m.quarantined_frames(), poison.len() as u64);
    for (sid, _, _) in &halves {
        assert_eq!(
            counts.get(sid),
            expected_by_session.get(sid),
            "bystander session {sid} detections diverged from the uninjected run"
        );
    }
    let bystander_detections: u64 = counts
        .iter()
        .filter(|(s, _)| **s != VICTIM)
        .map(|(_, n)| n)
        .sum();
    outcome(
        "panic_injection",
        driver,
        bystanders.len() + 1,
        frames_sent,
        &m,
        bystander_detections,
        Some(sum_counts(&expected_by_session)),
        Some(recovery_ms),
        started,
    )
}

// ----- overhead A/B ---------------------------------------------------

/// The supervision + admission overhead report: the same steady-state
/// workload through an unhardened server (`supervision off`, no
/// admission checks) and a hardened one (`catch_unwind` wrapper, quota
/// bucket and memory-budget checks active but never tripping).
pub struct OverheadReport {
    pub frames: usize,
    pub trials: usize,
    /// Best-of-trials frames/sec, supervision off.
    pub base_fps: f64,
    /// Best-of-trials frames/sec, supervision + idle admission on.
    pub hardened_fps: f64,
    /// `(base - hardened) / base`, percent; negative means noise.
    pub overhead_pct: f64,
}

/// Measures the steady-state cost of the `catch_unwind` wrapper and
/// the admission checks (configured but never shedding). Best-of-N on
/// both legs to suppress scheduler noise.
pub fn overhead_ab(frames: usize, trials: usize) -> OverheadReport {
    let workload = swipe_workload(frames, 7);
    let run_once = |hardened: bool| -> f64 {
        let mut config = ServerConfig::new()
            .with_shards(1)
            .with_queue_capacity(256)
            .with_backpressure(BackpressurePolicy::Block)
            .with_supervision(hardened);
        if hardened {
            // Admission active on every batch, shedding on none.
            config = config
                .with_session_frame_quota(u32::MAX)
                .with_shard_memory_budget(usize::MAX >> 1);
        }
        let server = Server::start(config);
        teach_swipe(&server);
        let t0 = Instant::now();
        for chunk in workload.chunks(60) {
            server
                .push_batch(SessionId(0), chunk.to_vec())
                .expect("push");
        }
        server.drain().expect("drain");
        let fps = workload.len() as f64 / t0.elapsed().as_secs_f64();
        server.shutdown();
        fps
    };
    // One warmup pair, then alternate legs so drift hits both equally.
    let _ = run_once(false);
    let _ = run_once(true);
    let (mut base_fps, mut hardened_fps) = (0.0f64, 0.0f64);
    for _ in 0..trials {
        base_fps = base_fps.max(run_once(false));
        hardened_fps = hardened_fps.max(run_once(true));
    }
    OverheadReport {
        frames,
        trials,
        base_fps,
        hardened_fps,
        overhead_pct: (base_fps - hardened_fps) / base_fps * 100.0,
    }
}

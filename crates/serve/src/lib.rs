//! # gesto-serve — a sharded multi-session detection runtime
//!
//! The paper's engine detects gestures for *one* user on *one* Kinect
//! stream; this crate is the multi-tenant runtime on the road to serving
//! millions of users: a [`Server`] owns a pool of worker shards, each a
//! thread with a FIFO job queue, and routes every session (one live
//! skeleton stream) to a fixed shard so per-session NFA state stays
//! single-threaded and lock-free.
//!
//! The key economy is **compile once, share everywhere**: a gesture
//! taught or deployed through the [`ServerHandle`] is parsed and compiled
//! into one `Arc<QueryPlan>` and broadcast to all shards, which stamp out
//! cheap per-session instances — deploying one gesture to 10 000 sessions
//! costs one compilation, not 10 000 (the runtime query-exchange of
//! §4 of the paper, made multi-tenant).
//!
//! Ingestion is batched ([`ServerHandle::push_batch`]) over bounded
//! per-shard queues with a configurable [`BackpressurePolicy`] (block /
//! drop-oldest / reject). Detections fan out to [`DetectionSink`]s with
//! their [`SessionId`]; per-shard and per-gesture counters plus p50/p99
//! push latency are aggregated by [`ServerHandle::metrics`]. Shards drain
//! gracefully: [`ServerHandle::drain`], [`ServerHandle::close_session`]
//! and [`Server::shutdown`] all process queued frames before returning.
//!
//! The [`net`] module puts this runtime on the wire: a non-blocking TCP
//! front-end ([`net::NetServer`]) speaking the documented columnar
//! `GSW1` protocol (`docs/PROTOCOL.md`), with credit-based flow control
//! mapped onto the backpressure policies and detections streamed back
//! per session; [`net::NetClient`] is the matching blocking client.
//!
//! ```
//! use gesto_serve::{Server, ServerConfig, SessionId};
//! use gesto_kinect::{gestures, Performer, Persona};
//!
//! let server = Server::start(ServerConfig::new().with_shards(2));
//! let handle = server.handle();
//!
//! // Teach once…
//! let samples: Vec<_> = (0..3)
//!     .map(|seed| {
//!         let mut p = Performer::new(Persona::reference().with_seed(seed), 0);
//!         p.render(&gestures::swipe_right())
//!     })
//!     .collect();
//! handle.teach("swipe_right", &samples).unwrap();
//!
//! // …detect on many concurrent sessions.
//! for user in 0..4u64 {
//!     let mut p = Performer::new(Persona::reference().with_seed(100 + user), 0);
//!     let frames = p.render(&gestures::swipe_right());
//!     handle.push_batch(SessionId(user), frames).unwrap();
//! }
//! handle.drain().unwrap();
//! assert!(handle.metrics().detections() >= 4);
//! server.shutdown();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod affinity;
mod config;
mod durable;
mod error;
pub mod failpoint;
mod metrics;
pub mod net;
mod server;
mod session;
mod shard;
mod telemetry;

pub use config::{BackpressurePolicy, DurabilityConfig, ServerConfig};
pub use durable::ControlOp;
pub use error::ServeError;
pub use metrics::{LatencySummary, OverloadState, ServerMetrics, ShardMetrics, ShardSnapshot};
pub use server::{DetectionSink, OfferOutcome, Server, ServerHandle};
pub use session::SessionId;

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use crossbeam::channel::bounded;
    use gesto_kinect::{gestures, Performer, Persona};
    use parking_lot::Mutex;

    use super::*;

    fn swipe_frames(seed: u64) -> Vec<gesto_kinect::SkeletonFrame> {
        let mut p = Performer::new(Persona::reference().with_seed(seed), 0);
        p.render(&gestures::swipe_right())
    }

    fn server_with_swipe(config: ServerConfig) -> Server {
        let server = Server::start(config);
        let samples: Vec<_> = (0..3).map(swipe_frames).collect();
        server.teach("swipe_right", &samples).unwrap();
        server
    }

    #[test]
    fn teach_once_detect_on_many_sessions() {
        let server = server_with_swipe(ServerConfig::new().with_shards(2));
        let hits: Arc<Mutex<Vec<(SessionId, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = hits.clone();
        server.on_detection(Arc::new(move |s, d| {
            sink.lock().push((s, d.gesture.clone()));
        }));

        for user in 0..6u64 {
            server
                .push_batch(SessionId(user), swipe_frames(50 + user))
                .unwrap();
        }
        server.drain().unwrap();

        let hits = hits.lock();
        let mut sessions: Vec<u64> = hits.iter().map(|(s, _)| s.0).collect();
        sessions.sort_unstable();
        sessions.dedup();
        assert_eq!(sessions, vec![0, 1, 2, 3, 4, 5], "every session detected");
        assert!(hits.iter().all(|(_, g)| g == "swipe_right"));
        assert_eq!(server.session_count(), 6);
        assert_eq!(server.metrics().plans_compiled, 1, "compile-once");
        server.shutdown();
    }

    #[test]
    fn deploy_undeploy_midstream() {
        let server = Server::start(ServerConfig::new().with_shards(1));
        server
            .deploy_text(r#"SELECT "hi" MATCHING kinect(head_y > 100000);"#)
            .unwrap();
        assert_eq!(server.deployed(), vec!["hi"]);
        server.push_batch(SessionId(1), swipe_frames(1)).unwrap();
        server.drain().unwrap();
        server.undeploy("hi").unwrap();
        assert!(server.deployed().is_empty());
        assert!(matches!(
            server.undeploy("hi"),
            Err(ServeError::Cep(gesto_cep::CepError::UnknownQuery(_)))
        ));
        server.shutdown();
    }

    #[test]
    fn reject_policy_reports_queue_full() {
        let server = server_with_swipe(
            ServerConfig::new()
                .with_shards(1)
                .with_queue_capacity(2)
                .with_backpressure(BackpressurePolicy::Reject),
        );
        // Clog the shard: a rendezvous barrier blocks the worker until we
        // receive, so queued batches pile up deterministically.
        let (hold_tx, hold_rx) = bounded::<()>(0);
        server.barrier_for_test(hold_tx);
        server.push_batch(SessionId(0), swipe_frames(1)).unwrap();
        server.push_batch(SessionId(0), swipe_frames(2)).unwrap();
        let err = server.push_batch(SessionId(0), swipe_frames(3));
        assert!(
            matches!(err, Err(ServeError::QueueFull { shard: 0 })),
            "{err:?}"
        );
        hold_rx.recv().unwrap(); // release the worker
        server.drain().unwrap();
        assert_eq!(
            server.metrics().frames_in(),
            2 * swipe_frames(1).len() as u64
        );
        server.shutdown();
    }

    #[test]
    fn drop_oldest_policy_sheds_head_of_queue() {
        let server = Server::start(
            ServerConfig::new()
                .with_shards(1)
                .with_queue_capacity(2)
                .with_backpressure(BackpressurePolicy::DropOldest),
        );
        // Single-event query marking which batches survive: each batch
        // carries a distinct, instantly matching first frame timestamp.
        server
            .deploy_text(r#"SELECT "any" MATCHING kinect(head_y > -100000);"#)
            .unwrap();
        let ts_seen: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = ts_seen.clone();
        server.on_detection(Arc::new(move |_s, d| sink.lock().push(d.ts)));

        let (hold_tx, hold_rx) = bounded::<()>(0);
        server.barrier_for_test(hold_tx);
        // Batches B0..B3 of one frame each, with distinct timestamps.
        let base = swipe_frames(1);
        for (i, f) in base.iter().take(4).enumerate() {
            let mut f = f.clone();
            f.ts = 1_000_000 + i as i64;
            server.push_batch(SessionId(0), vec![f]).unwrap();
        }
        // cap=2: B2 and B3 each requested one oldest-batch shed.
        hold_rx.recv().unwrap();
        server.drain().unwrap();

        let seen = ts_seen.lock().clone();
        assert_eq!(seen, vec![1_000_002, 1_000_003], "oldest two batches shed");
        let m = server.metrics();
        assert_eq!(m.shed_frames(), 2);
        assert_eq!(m.frames_in(), 2);
        server.shutdown();
    }

    #[test]
    fn blocking_policy_loses_nothing() {
        let server = server_with_swipe(
            ServerConfig::new()
                .with_shards(1)
                .with_queue_capacity(1)
                .with_backpressure(BackpressurePolicy::Block),
        );
        let frames = swipe_frames(7);
        let total: usize = 20 * frames.len();
        for _ in 0..20 {
            server.push_batch(SessionId(3), frames.clone()).unwrap();
        }
        server.close_session(SessionId(3)).unwrap();
        let m = server.metrics();
        assert_eq!(m.frames_in(), total as u64, "no frame lost while blocking");
        assert_eq!(m.shed_frames(), 0);
        assert_eq!(server.session_count(), 0, "session closed");
        server.shutdown();
    }

    #[test]
    fn blocking_producer_racing_shutdown_neither_deadlocks_nor_miscounts() {
        let server = server_with_swipe(
            ServerConfig::new()
                .with_shards(1)
                .with_queue_capacity(1)
                .with_backpressure(BackpressurePolicy::Block),
        );
        let handle = server.handle();
        let (hold_tx, hold_rx) = bounded::<()>(0);
        server.barrier_for_test(hold_tx);
        let frames = swipe_frames(1);
        let per_batch = frames.len() as u64;
        // Fills cap=1 behind the clogged worker.
        server.push_batch(SessionId(0), frames.clone()).unwrap();

        // This producer parks in the queue gate's `wait_below`.
        let (done_tx, done_rx) = bounded(1);
        let producer = {
            let handle = handle.clone();
            let frames = frames.clone();
            std::thread::spawn(move || {
                let _ = done_tx.send(handle.push_batch(SessionId(0), frames));
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(done_rx.try_recv().is_err(), "producer should be parked");

        // Race shutdown against the parked producer's wakeup.
        let shutdown = std::thread::spawn(move || server.shutdown());
        hold_rx.recv().unwrap(); // unclog the worker
        let res = done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("parked producer must resolve during shutdown, not deadlock");
        producer.join().unwrap();
        shutdown.join().unwrap();

        let m = handle.metrics();
        match res {
            // Accepted: processed before the stop signal reached the
            // worker, or still queued when the worker exited (shutdown
            // drains only what was queued when it began) — never
            // double-counted.
            Ok(()) => assert!(
                m.frames_in() == per_batch || m.frames_in() == 2 * per_batch,
                "frames_in {} not a whole number of accepted batches",
                m.frames_in()
            ),
            // Handed back by the closing shard: not counted as ingested.
            Err(ServeError::Shutdown) => assert_eq!(m.frames_in(), per_batch),
            other => panic!("unexpected producer result: {other:?}"),
        }
        assert_eq!(m.shed_frames(), 0, "Block policy never sheds");
        assert!(matches!(
            handle.push_batch(SessionId(9), swipe_frames(9)),
            Err(ServeError::Shutdown)
        ));
    }

    #[test]
    fn shutdown_rejects_further_pushes() {
        let server = server_with_swipe(ServerConfig::new().with_shards(1));
        let handle = server.handle();
        server.shutdown();
        assert!(matches!(
            handle.push_batch(SessionId(0), swipe_frames(0)),
            Err(ServeError::Shutdown)
        ));
    }

    #[test]
    fn sessions_route_stably_across_shards() {
        let server = server_with_swipe(ServerConfig::new().with_shards(3));
        for user in 0..9u64 {
            server
                .push_batch(SessionId(user), swipe_frames(user))
                .unwrap();
        }
        server.drain().unwrap();
        let m = server.metrics();
        let per_shard: Vec<usize> = m.shards.iter().map(|s| s.sessions).collect();
        assert_eq!(per_shard.iter().sum::<usize>(), 9, "every session resident");
        // Hashed routing spreads even 9 sequential ids over all 3 shards
        // (exact placement is pinned by the splitmix64 hash).
        assert!(
            per_shard.iter().all(|&n| n > 0),
            "hashed routing uses every shard: {per_shard:?}"
        );
        // Routing is stable: re-pushing the same ids adds no sessions.
        for user in 0..9u64 {
            server
                .push_batch(SessionId(user), swipe_frames(user))
                .unwrap();
        }
        server.drain().unwrap();
        assert_eq!(server.metrics().sessions(), 9);
        assert!(m.shards.iter().all(|s| s.latency.samples > 0));
        server.shutdown();
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gesto-serve-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_server_restarts_from_disk() {
        let dir = temp_dir("restart");
        let detections_of = |server: &Server| {
            for user in 0..3u64 {
                server
                    .push_batch(SessionId(user), swipe_frames(200 + user))
                    .unwrap();
            }
            server.drain().unwrap();
            server.metrics().per_gesture.clone()
        };

        let server = Server::start(ServerConfig::new().with_shards(2).with_durability(&dir));
        let samples: Vec<_> = (0..3).map(swipe_frames).collect();
        server.teach("swipe_right", &samples).unwrap();
        server
            .deploy_text(r#"SELECT "never" MATCHING kinect(head_y > 100000);"#)
            .unwrap();
        server.set_config("mode", "demo").unwrap();
        let versions = server.deployed_versions();
        let store_snap = server.store().snapshot();
        let config = server.config_entries();
        let first_run = detections_of(&server);
        assert!(first_run.contains_key("swipe_right"));
        server.shutdown();

        // A restarted server recovers the full control plane from disk —
        // store, deployed plans with versions, config — and detects the
        // same performances identically. Compiled once per plan, on
        // recovery.
        let server = Server::start(ServerConfig::new().with_shards(2).with_durability(&dir));
        assert_eq!(server.deployed_versions(), versions);
        assert_eq!(server.store().snapshot(), store_snap);
        assert_eq!(server.config_entries(), config);
        assert_eq!(server.get_config("mode").as_deref(), Some("demo"));
        assert_eq!(server.metrics().plans_compiled, 2);
        assert_eq!(detections_of(&server), first_run);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_replays_ops_beyond_checkpoint() {
        let dir = temp_dir("replay");
        let server = Server::start(ServerConfig::new().with_shards(1).with_durability(&dir));
        server.set_config("a", "1").unwrap();
        server.checkpoint().unwrap().expect("durability is on");
        // Ops after the checkpoint live only in the journal tail.
        server.set_config("b", "2").unwrap();
        server
            .deploy_text(r#"SELECT "late" MATCHING kinect(head_y > 100000);"#)
            .unwrap();
        server.shutdown();

        let server = Server::start(ServerConfig::new().with_shards(1).with_durability(&dir));
        assert_eq!(server.get_config("a").as_deref(), Some("1"));
        assert_eq!(server.get_config("b").as_deref(), Some("2"));
        assert_eq!(server.deployed(), vec!["late"]);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn redeploy_bumps_version_and_drains_in_flight_runs() {
        let server = server_with_swipe(ServerConfig::new().with_shards(1));
        assert_eq!(server.plan_version("swipe_right"), Some(1));
        let text = server
            .store()
            .get("swipe_right")
            .unwrap()
            .query_text
            .unwrap();

        // Seed an in-flight partial match: the first half of a swipe.
        let frames = swipe_frames(77);
        let (head, tail) = frames.split_at(frames.len() / 2);
        server.push_batch(SessionId(0), head.to_vec()).unwrap();
        server.drain().unwrap();

        // Redeploy the same query mid-gesture: version 2 cuts in at the
        // batch boundary, version 1 keeps draining its in-flight run.
        server.deploy_text(&text).unwrap();
        assert_eq!(server.plan_version("swipe_right"), Some(2));
        server.drain().unwrap();
        let retiring: usize = server.metrics().shards.iter().map(|s| s.retiring).sum();
        assert_eq!(retiring, 1, "old version still draining");

        // The drained run completes across the cutover: the performance
        // begun under v1 is still detected — a redeploy under load loses
        // no in-flight detection.
        server.push_batch(SessionId(0), tail.to_vec()).unwrap();
        server.drain().unwrap();
        assert_eq!(
            server.metrics().per_gesture.get("swipe_right"),
            Some(&1),
            "performance spanning the rollout detected exactly once"
        );
        server.shutdown();
    }
}

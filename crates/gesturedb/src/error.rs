//! Gesture database errors.

use std::fmt;

/// Errors of the gesture store and its import/export formats.
#[derive(Debug)]
pub enum DbError {
    /// A definition failed validation.
    InvalidDefinition(String),
    /// Snapshot format version mismatch.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// Snapshot integrity check failed (stored CRC does not match the
    /// payload).
    Corrupt {
        /// CRC stored in the snapshot.
        stored: u32,
        /// CRC recomputed over the payload.
        computed: u32,
    },
    /// Filesystem error.
    Io(String),
    /// JSON (de)serialisation error.
    Serde(serde_json::Error),
    /// CSV import error with line number.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::InvalidDefinition(m) => write!(f, "invalid gesture definition: {m}"),
            DbError::Version { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (supported: {supported})"
                )
            }
            DbError::Corrupt { stored, computed } => {
                write!(
                    f,
                    "snapshot corrupt: stored crc {stored:#010x}, computed {computed:#010x}"
                )
            }
            DbError::Io(m) => write!(f, "io error: {m}"),
            DbError::Serde(e) => write!(f, "serialisation error: {e}"),
            DbError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for DbError {
    fn from(e: serde_json::Error) -> Self {
        DbError::Serde(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DbError::Io("nope".into()).to_string().contains("nope"));
        assert!(DbError::Version {
            found: 2,
            supported: 1
        }
        .to_string()
        .contains("2"));
        assert!(DbError::Csv {
            line: 7,
            message: "bad".into()
        }
        .to_string()
        .contains("line 7"));
    }
}

//! Error type shared by the stream substrate.

use std::fmt;

/// Errors raised by schema validation, tuple construction and pipeline
/// wiring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// Invalid schema definition.
    Schema(String),
    /// A field name was not present in a schema.
    UnknownField {
        /// Schema (stream) name.
        schema: String,
        /// Requested field.
        field: String,
    },
    /// A value did not conform to the declared field type.
    TypeMismatch {
        /// Schema (stream) name.
        schema: String,
        /// Field name.
        field: String,
        /// Human-readable description of the offending value.
        value: String,
    },
    /// Tuple arity differed from the schema arity.
    Arity {
        /// Schema (stream) name.
        schema: String,
        /// Expected number of fields.
        expected: usize,
        /// Provided number of values.
        got: usize,
    },
    /// A named stream or view was not found in the catalog.
    UnknownStream(String),
    /// A stream or view name was registered twice.
    DuplicateStream(String),
    /// Pipeline wiring problem (cycles, missing sink, ...).
    Pipeline(String),
    /// The pipeline/channel was already closed.
    Closed,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Schema(msg) => write!(f, "schema error: {msg}"),
            StreamError::UnknownField { schema, field } => {
                write!(f, "unknown field '{field}' in schema '{schema}'")
            }
            StreamError::TypeMismatch {
                schema,
                field,
                value,
            } => write!(
                f,
                "type mismatch in '{schema}.{field}': value {value} does not conform"
            ),
            StreamError::Arity {
                schema,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for schema '{schema}': expected {expected} values, got {got}"
            ),
            StreamError::UnknownStream(name) => write!(f, "unknown stream or view '{name}'"),
            StreamError::DuplicateStream(name) => {
                write!(f, "stream or view '{name}' is already registered")
            }
            StreamError::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
            StreamError::Closed => f.write_str("stream closed"),
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StreamError::UnknownStream("k".into()).to_string(),
            "unknown stream or view 'k'"
        );
        assert!(StreamError::Arity {
            schema: "s".into(),
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("expected 2"));
        assert!(StreamError::Closed.to_string().contains("closed"));
    }
}

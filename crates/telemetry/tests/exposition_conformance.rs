//! Conformance goldens for the Prometheus text exposition format, in
//! the spirit of `protocol_conformance.rs` on the wire side: each test
//! pins the exact rendered payload to a hand-written expectation, so an
//! accidental format change (header order, escaping, bucket math) fails
//! loudly instead of silently breaking scrapers.

use gesto_telemetry::Registry;

#[test]
fn counter_family_golden() {
    let r = Registry::new();
    let c = r.counter(
        "gesto_net_frames_received_total",
        "Skeleton frames decoded off the wire",
        &[],
    );
    c.add(1234);
    assert_eq!(
        r.render(),
        "# HELP gesto_net_frames_received_total Skeleton frames decoded off the wire\n\
         # TYPE gesto_net_frames_received_total counter\n\
         gesto_net_frames_received_total 1234\n"
    );
}

#[test]
fn labelled_series_golden() {
    let r = Registry::new();
    // Registered out of order: series must render sorted by labels,
    // under a single family header.
    r.counter(
        "gesto_shard_frames_total",
        "Frames per shard",
        &[("shard", "1")],
    )
    .add(20);
    r.counter(
        "gesto_shard_frames_total",
        "Frames per shard",
        &[("shard", "0")],
    )
    .add(10);
    assert_eq!(
        r.render(),
        "# HELP gesto_shard_frames_total Frames per shard\n\
         # TYPE gesto_shard_frames_total counter\n\
         gesto_shard_frames_total{shard=\"0\"} 10\n\
         gesto_shard_frames_total{shard=\"1\"} 20\n"
    );
}

#[test]
fn gauge_golden() {
    let r = Registry::new();
    let g = r.gauge("gesto_nfa_runs_active", "Live NFA runs", &[]);
    g.set(-3);
    assert_eq!(
        r.render(),
        "# HELP gesto_nfa_runs_active Live NFA runs\n\
         # TYPE gesto_nfa_runs_active gauge\n\
         gesto_nfa_runs_active -3\n"
    );
}

#[test]
fn histogram_golden() {
    let r = Registry::new();
    let h = r.histogram(
        "gesto_shard_push_latency_us",
        "Enqueue-to-detection latency",
        &[("shard", "0")],
    );
    h.record(1); // bucket 0: le=2
    h.record(3); // bucket 1: le=4
    h.record(3);
    h.record(100); // bucket 6: le=128
    assert_eq!(
        r.render(),
        "# HELP gesto_shard_push_latency_us Enqueue-to-detection latency\n\
         # TYPE gesto_shard_push_latency_us histogram\n\
         gesto_shard_push_latency_us_bucket{shard=\"0\",le=\"2\"} 1\n\
         gesto_shard_push_latency_us_bucket{shard=\"0\",le=\"4\"} 3\n\
         gesto_shard_push_latency_us_bucket{shard=\"0\",le=\"8\"} 3\n\
         gesto_shard_push_latency_us_bucket{shard=\"0\",le=\"16\"} 3\n\
         gesto_shard_push_latency_us_bucket{shard=\"0\",le=\"32\"} 3\n\
         gesto_shard_push_latency_us_bucket{shard=\"0\",le=\"64\"} 3\n\
         gesto_shard_push_latency_us_bucket{shard=\"0\",le=\"128\"} 4\n\
         gesto_shard_push_latency_us_bucket{shard=\"0\",le=\"+Inf\"} 4\n\
         gesto_shard_push_latency_us_sum{shard=\"0\"} 107\n\
         gesto_shard_push_latency_us_count{shard=\"0\"} 4\n"
    );
}

#[test]
fn escaping_golden() {
    let r = Registry::new();
    r.register_collector(|set| {
        set.counter(
            "gesto_esc_total",
            "Line one\nline \\two",
            &[("path", "a\\b\"c\nd")],
            1,
        );
    });
    assert_eq!(
        r.render(),
        "# HELP gesto_esc_total Line one\\nline \\\\two\n\
         # TYPE gesto_esc_total counter\n\
         gesto_esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"
    );
}

#[test]
fn mixed_registry_families_sort_by_name() {
    let r = Registry::new();
    r.counter("gesto_z_total", "z", &[]).inc();
    r.gauge("gesto_a_active", "a", &[]).set(2);
    assert_eq!(
        r.render(),
        "# HELP gesto_a_active a\n\
         # TYPE gesto_a_active gauge\n\
         gesto_a_active 2\n\
         # HELP gesto_z_total z\n\
         # TYPE gesto_z_total counter\n\
         gesto_z_total 1\n"
    );
}

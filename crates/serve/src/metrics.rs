//! Per-shard and aggregated server metrics.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// How many recent push latencies each shard retains for percentile
/// estimation.
const LATENCY_WINDOW: usize = 1024;

/// Sliding window of recent latencies (microseconds).
#[derive(Default)]
pub(crate) struct LatencyRecorder {
    ring: Mutex<LatencyRing>,
}

#[derive(Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyRecorder {
    pub(crate) fn record(&self, micros: u64) {
        let mut ring = self.ring.lock();
        if ring.samples.len() < LATENCY_WINDOW {
            ring.samples.push(micros);
        } else {
            let i = ring.next;
            ring.samples[i] = micros;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    pub(crate) fn summary(&self) -> LatencySummary {
        let ring = self.ring.lock();
        if ring.samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = ring.samples.clone();
        sorted.sort_unstable();
        // Nearest-rank percentile: idx = ⌈q·N⌉ − 1.
        let pick = |q: f64| {
            let idx = (q * sorted.len() as f64).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        LatencySummary {
            samples: sorted.len(),
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

/// Percentiles over a shard's recent batch-push latencies
/// (enqueue → fully processed), in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Latencies in the window.
    pub samples: usize,
    /// Median latency.
    pub p50_us: u64,
    /// 99th-percentile latency.
    pub p99_us: u64,
    /// Worst latency in the window.
    pub max_us: u64,
}

/// Live counters of one shard, shared between the worker thread and the
/// server front-end (lock-free on the hot path except the per-gesture map
/// and the latency ring, which are touched per batch, not per frame).
#[derive(Default)]
pub struct ShardMetrics {
    pub(crate) frames_in: AtomicU64,
    pub(crate) batches_in: AtomicU64,
    pub(crate) detections: AtomicU64,
    pub(crate) shed_frames: AtomicU64,
    pub(crate) shed_batches: AtomicU64,
    pub(crate) push_errors: AtomicU64,
    pub(crate) sink_panics: AtomicU64,
    pub(crate) sessions: AtomicUsize,
    pub(crate) per_gesture: Mutex<HashMap<String, u64>>,
    pub(crate) latency: LatencyRecorder,
}

impl ShardMetrics {
    pub(crate) fn record_detections(&self, gesture_counts: &HashMap<String, u64>, total: u64) {
        self.detections.fetch_add(total, Ordering::Relaxed);
        let mut map = self.per_gesture.lock();
        for (g, n) in gesture_counts {
            *map.entry(g.clone()).or_insert(0) += n;
        }
    }

    /// `queue_depth` is read from the shard's queue gate (the one live
    /// counter backpressure also uses) and passed in by the server.
    pub(crate) fn snapshot(&self, shard: usize, queue_depth: usize) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            frames_in: self.frames_in.load(Ordering::Relaxed),
            batches_in: self.batches_in.load(Ordering::Relaxed),
            detections: self.detections.load(Ordering::Relaxed),
            shed_frames: self.shed_frames.load(Ordering::Relaxed),
            shed_batches: self.shed_batches.load(Ordering::Relaxed),
            push_errors: self.push_errors.load(Ordering::Relaxed),
            sink_panics: self.sink_panics.load(Ordering::Relaxed),
            queue_depth,
            sessions: self.sessions.load(Ordering::Relaxed),
            latency: self.latency.summary(),
        }
    }
}

/// Point-in-time counters of one shard.
#[derive(Debug, Clone, Default)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Frames processed.
    pub frames_in: u64,
    /// Batches processed.
    pub batches_in: u64,
    /// Detections produced.
    pub detections: u64,
    /// Frames lost to the drop-oldest policy.
    pub shed_frames: u64,
    /// Batches lost to the drop-oldest policy.
    pub shed_batches: u64,
    /// Tuples that failed predicate evaluation.
    pub push_errors: u64,
    /// Detection-sink invocations that panicked (caught; the shard
    /// keeps running).
    pub sink_panics: u64,
    /// Batches currently queued.
    pub queue_depth: usize,
    /// Sessions resident on this shard.
    pub sessions: usize,
    /// Recent push-latency percentiles.
    pub latency: LatencySummary,
}

/// Aggregated view over all shards.
#[derive(Debug, Clone, Default)]
pub struct ServerMetrics {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Detections per gesture, merged across shards.
    pub per_gesture: BTreeMap<String, u64>,
    /// Plans compiled *by this server* (never per session — the
    /// compile-once invariant). Plans moved in pre-compiled via
    /// `deploy_plan` (e.g. from `GestureSystem::into_server`) are not
    /// counted; use `deployed()` for the live gesture count.
    pub plans_compiled: u64,
}

impl ServerMetrics {
    /// Total frames processed across shards.
    pub fn frames_in(&self) -> u64 {
        self.shards.iter().map(|s| s.frames_in).sum()
    }

    /// Total detections across shards.
    pub fn detections(&self) -> u64 {
        self.shards.iter().map(|s| s.detections).sum()
    }

    /// Total frames shed across shards.
    pub fn shed_frames(&self) -> u64 {
        self.shards.iter().map(|s| s.shed_frames).sum()
    }

    /// Total live sessions across shards.
    pub fn sessions(&self) -> usize {
        self.shards.iter().map(|s| s.sessions).sum()
    }

    /// Total queued batches across shards.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles() {
        let rec = LatencyRecorder::default();
        for us in 1..=100 {
            rec.record(us);
        }
        let s = rec.summary();
        assert_eq!(s.samples, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn latency_window_wraps() {
        let rec = LatencyRecorder::default();
        for us in 0..(LATENCY_WINDOW as u64 + 10) {
            rec.record(us);
        }
        let s = rec.summary();
        assert_eq!(s.samples, LATENCY_WINDOW);
        assert_eq!(s.max_us, LATENCY_WINDOW as u64 + 9);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(
            LatencyRecorder::default().summary(),
            LatencySummary::default()
        );
    }
}

//! The push-based operator abstraction.

use crate::block::ColumnBlock;
use crate::schema::SchemaRef;
use crate::tuple::Tuple;

/// Downstream continuation: operators emit output tuples by calling this.
pub type Emit<'a> = dyn FnMut(Tuple) + 'a;

/// A push-based stream operator.
///
/// Operators receive one input tuple at a time and may emit zero or more
/// output tuples via the `emit` continuation, which keeps per-tuple
/// processing allocation-free for pass-through operators.
pub trait Operator: Send {
    /// Human-readable operator name (for stats and debugging).
    fn name(&self) -> &str;

    /// Output schema produced by this operator.
    fn output_schema(&self) -> SchemaRef;

    /// Processes one tuple.
    fn process(&mut self, tuple: &Tuple, emit: &mut Emit<'_>);

    /// Flushes any buffered state at end-of-stream (windows, aggregates).
    ///
    /// The default implementation emits nothing.
    fn finish(&mut self, _emit: &mut Emit<'_>) {}

    /// Batch-boundary hint from block-building callers (see
    /// [`Self::fill_block`]): when `on`, the operator may record
    /// per-emission state during the following `process` calls so the
    /// batch's float lanes can be written straight from source data.
    /// Called once before each batch. The default ignores it.
    fn begin_block_capture(&mut self, _on: bool) {}

    /// Writes the float lanes of `block` for exactly the tuples in
    /// `out` — this operator's emissions since the last
    /// `begin_block_capture(true)` — restricted to the `cols` column
    /// filter (same contract as
    /// [`ColumnBlock::fill_from_tuples_filtered`]).
    ///
    /// Returning `true` asserts the written block is **bit-identical**
    /// to rebuilding the lanes from `out`; operators that cannot write
    /// lanes directly return `false` (the default) and the caller
    /// performs that rebuild itself.
    fn fill_block(
        &mut self,
        _out: &[Tuple],
        _cols: Option<&[usize]>,
        _block: &mut ColumnBlock,
    ) -> bool {
        false
    }
}

/// A boxed operator, the unit the pipeline wires together.
pub type BoxedOperator = Box<dyn Operator>;

/// Collects emitted tuples into a vector; convenient in tests and for
/// one-shot batch runs.
pub fn run_operator(op: &mut dyn Operator, input: &[Tuple]) -> Vec<Tuple> {
    let mut out = Vec::new();
    {
        let mut emit = |t: Tuple| out.push(t);
        for t in input {
            op.process(t, &mut emit);
        }
        op.finish(&mut emit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::Value;

    struct Doubler {
        schema: SchemaRef,
    }

    impl Operator for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn output_schema(&self) -> SchemaRef {
            self.schema.clone()
        }
        fn process(&mut self, tuple: &Tuple, emit: &mut Emit<'_>) {
            emit(tuple.clone());
            emit(tuple.clone());
        }
    }

    #[test]
    fn run_operator_collects_all_emissions() {
        let schema = SchemaBuilder::new("s").int("a").build().unwrap();
        let t = Tuple::new(schema.clone(), vec![Value::Int(1)]).unwrap();
        let mut op = Doubler { schema };
        let out = run_operator(&mut op, &[t.clone(), t]);
        assert_eq!(out.len(), 4);
    }
}

//! The TCP ingestion edge: a non-blocking network front-end for the
//! sharded detection [`Server`](crate::Server).
//!
//! [`NetConfig::io_threads`] I/O threads (default one) each run a
//! readiness loop (epoll on Linux, a portable fallback elsewhere — see
//! `poll`) over a non-blocking listener and the client connections the
//! kernel assigned to it. With more than one thread the listeners
//! share the port via `SO_REUSEPORT`, so accepting and wire decode
//! scale past a single core while each connection still lives on
//! exactly one loop. Clients speak the versioned little-endian `GSW1`
//! protocol specified in `docs/PROTOCOL.md` and implemented in
//! [`wire`]: columnar frame batches in, detections with session
//! attribution out, flow-controlled by credit grants.
//!
//! The decode path is allocation-lean by design: a wire batch decodes
//! straight into `SkeletonFrame` rows whose per-joint lanes mirror the
//! engine's `ColumnBlock` layout, and is handed to the existing shard
//! pipeline via the non-blocking `offer_batch` — no per-frame
//! `Vec<Value>` materialisation between socket and NFA (see
//! `docs/ARCHITECTURE.md` for the full walk of the data path).
//!
//! **Backpressure** is end-to-end: a full shard queue under the
//! blocking policy parks the offending connection's batches, disables
//! its read interest and withholds credit — the client's credit window
//! dries up and *it* stops sending, while every other connection keeps
//! streaming. The rejecting policy surfaces as protocol `QueueFull`
//! error frames instead; drop-oldest stays invisible to the wire.
//!
//! Detections take the reverse path with minimal latency: shard
//! threads encode and write them into the connection's outbox
//! *directly* (flushing the socket inline when it has room), so a
//! detection does not wait for an event-loop tick.
//!
//! The same port doubles as the **observability endpoint**: a
//! connection whose first bytes spell an HTTP method instead of a
//! `GSW1` envelope is served `GET /metrics` (Prometheus text format
//! 0.0.4, rendered from the engine's [`crate::ServerHandle::registry`])
//! or `GET /healthz`, then closed — no extra thread, no extra port,
//! no HTTP dependency. Connections that send nothing for
//! [`NetConfig::idle_timeout_ms`] are reaped and counted as
//! `gesto_net_idle_closed_total`.
//!
//! ```no_run
//! use gesto_serve::net::{NetClient, NetConfig, NetServer};
//! use gesto_serve::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::new());
//! let net = NetServer::start(server.handle(), NetConfig::new()).unwrap();
//!
//! let mut client = NetClient::connect(net.local_addr()).unwrap();
//! client.open_session(1).unwrap();
//! // client.send_batch(1, &frames).unwrap();
//! let detections = client.bye().unwrap();
//! # drop(detections);
//! net.shutdown();
//! server.shutdown();
//! ```

pub mod client;
mod conn;
mod metrics;
mod poll;
pub mod wire;

pub use self::client::{client_reconnects_total, NetClient, NetClientConfig};
pub use self::metrics::{LatencyHistogram, NetMetrics, LATENCY_BUCKETS};

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use self::conn::{Conn, Outbox, ReadOutcome, SessionBinding};
use self::metrics::NetMetricsInner;
use self::poll::{would_block, Event, Interest, Poller};
use self::wire::{ErrorCode, Message, WireDetection};
use crate::server::OfferOutcome;
use crate::{ServeError, ServerHandle, SessionId};

/// Poller token reserved for the listening socket.
const TOKEN_LISTENER: u64 = 0;

/// First engine-side session id handed to network sessions; keeps them
/// visually distinct from low in-process ids in metrics and logs.
const NET_SESSION_BASE: u64 = 1 << 32;

/// Maximum buffered bytes while waiting for the end of an HTTP request
/// head; longer requests are dropped.
const HTTP_MAX_REQUEST: usize = 8 * 1024;

/// Does the buffered prefix spell an HTTP request rather than a `GSW1`
/// envelope? A `GSW1` stream opens with a little-endian `u32` payload
/// length that is always small; ASCII method names decode to lengths
/// in the hundreds of millions, so four bytes disambiguate. Fewer than
/// four buffered bytes stay undecided (the frame decoder treats them
/// as an incomplete envelope and waits, so no commitment is made).
fn looks_like_http(buf: &[u8]) -> bool {
    if buf.len() < 4 {
        return false;
    }
    matches!(
        &buf[..4],
        b"GET " | b"HEAD" | b"POST" | b"PUT " | b"DELE" | b"OPTI" | b"PATC" | b"TRAC"
    )
}

/// Index just past the `\r\n\r\n` terminating an HTTP request head.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Configuration of the TCP edge ([`NetServer::start`]).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listen address, e.g. `"0.0.0.0:7313"`. Port 0 picks a free port
    /// (read it back with [`NetServer::local_addr`]).
    pub addr: String,
    /// Credit window per connection, in frames (§4 of
    /// `docs/PROTOCOL.md`): the number of frames a client may have in
    /// flight before it must wait for a grant.
    pub initial_credits: u32,
    /// Connections beyond this are accepted and immediately dropped.
    pub max_connections: usize,
    /// Close a connection after this many milliseconds without inbound
    /// bytes (`0` disables the sweep). Idle closes are counted as
    /// `gesto_net_idle_closed_total`. Connections held paused by shard
    /// backpressure are exempt — they are stalled, not dead.
    pub idle_timeout_ms: u64,
    /// I/O threads serving the edge (default 1). With more than one,
    /// every thread runs its own listener bound with `SO_REUSEPORT` and
    /// its own epoll loop, so the kernel load-balances connections and
    /// wire decode scales past a single core. Platforms without the
    /// raw-syscall backend clamp to one thread. A connection lives on
    /// exactly one loop for its lifetime; engine session ids are drawn
    /// from one shared allocator, so shard routing is unaffected.
    pub io_threads: usize,
    /// Accept control-plane messages (`Deploy`/`Undeploy`/`SetConfig`,
    /// §8 of `docs/PROTOCOL.md`) on this edge. **Off by default**: the
    /// data edge is typically exposed to untrusted producers, and a
    /// control message on a non-control edge is answered with a
    /// `ControlDisabled` error frame (the connection stays usable).
    pub allow_control: bool,
    /// Sessions one connection may bind (default 1024). A bind past the
    /// cap is refused with a non-fatal `Overloaded` error frame — it
    /// bounds what one adversarial connection can pin in per-session
    /// NFA/view state.
    pub max_sessions_per_conn: usize,
    /// Batches one connection may hold parked on shard backpressure
    /// (default 64). Past the cap, further batches are dropped with a
    /// non-fatal `QueueFull` error frame instead of parked — it bounds
    /// the frames a connection can buffer server-side beyond its shard
    /// queue slot.
    pub max_parked_batches: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_owned(),
            initial_credits: 4096,
            max_connections: 16384,
            idle_timeout_ms: 300_000,
            io_threads: 1,
            allow_control: false,
            max_sessions_per_conn: 1024,
            max_parked_batches: 64,
        }
    }
}

impl NetConfig {
    /// Defaults: loopback on an ephemeral port, a 4096-frame credit
    /// window, at most 16384 connections, a five-minute idle timeout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the listen address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the per-connection credit window, in frames.
    pub fn with_initial_credits(mut self, frames: u32) -> Self {
        self.initial_credits = frames.max(1);
        self
    }

    /// Sets the connection cap.
    pub fn with_max_connections(mut self, conns: usize) -> Self {
        self.max_connections = conns.max(1);
        self
    }

    /// Sets the idle timeout in milliseconds (`0` disables it).
    pub fn with_idle_timeout_ms(mut self, ms: u64) -> Self {
        self.idle_timeout_ms = ms;
        self
    }

    /// Sets the number of I/O threads (`SO_REUSEPORT` listener shards).
    pub fn with_io_threads(mut self, threads: usize) -> Self {
        self.io_threads = threads.max(1);
        self
    }

    /// Allows control-plane messages (deploy/undeploy/set-config) on
    /// this edge. Only enable on edges reserved for trusted operators.
    pub fn with_allow_control(mut self, allow: bool) -> Self {
        self.allow_control = allow;
        self
    }

    /// Sets the per-connection session cap.
    pub fn with_max_sessions_per_conn(mut self, sessions: usize) -> Self {
        self.max_sessions_per_conn = sessions.max(1);
        self
    }

    /// Sets the per-connection parked-batch cap.
    pub fn with_max_parked_batches(mut self, batches: usize) -> Self {
        self.max_parked_batches = batches.max(1);
        self
    }
}

/// Route from an engine session back to the connection that owns it.
struct SessionRoute {
    /// The client-chosen id detections are attributed to (§5).
    client_session: u64,
    outbox: Arc<Outbox>,
    /// The connection negotiated [`wire::FLAG_WANT_EVENTS`].
    want_events: bool,
    /// Microseconds (since server epoch) of the last accepted wire
    /// batch — the "frame received" end of the latency histogram.
    last_rx_us: AtomicU64,
}

type Registry = Arc<Mutex<HashMap<u64, Arc<SessionRoute>>>>;

/// The running TCP edge: owns the listener and the I/O thread.
///
/// Start one over a [`ServerHandle`]; it registers a detection sink on
/// the engine and serves the `GSW1` protocol until [`Self::shutdown`]
/// (or drop). See the [module docs](self) for the data path.
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    metrics: NetMetrics,
}

/// Binds the edge's listening sockets. One thread gets a plain bind;
/// more get per-thread `SO_REUSEPORT` listeners sharing the port (the
/// first bind resolves port 0, the rest reuse the resolved address).
/// Platforms without [`poll::bind_reuseport`] fall back to a single
/// listener — the edge then runs one I/O thread.
fn bind_listeners(addr: &str, threads: usize) -> io::Result<Vec<TcpListener>> {
    let single = |addr: &str| -> io::Result<Vec<TcpListener>> {
        let l = TcpListener::bind(addr)?;
        l.set_nonblocking(true)?;
        Ok(vec![l])
    };
    if threads <= 1 {
        return single(addr);
    }
    use std::net::ToSocketAddrs;
    let target = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "unresolvable listen address")
    })?;
    let first = match poll::bind_reuseport(target) {
        Ok(l) => l,
        // No SO_REUSEPORT on this platform: serve single-threaded.
        Err(e) if e.kind() == io::ErrorKind::Unsupported => return single(addr),
        Err(e) => return Err(e),
    };
    let resolved = first.local_addr()?;
    let mut listeners = vec![first];
    for _ in 1..threads {
        listeners.push(poll::bind_reuseport(resolved)?);
    }
    for l in &listeners {
        l.set_nonblocking(true)?;
    }
    Ok(listeners)
}

impl NetServer {
    /// Binds `config.addr` and spawns [`NetConfig::io_threads`] I/O
    /// threads serving `handle`'s engine over TCP.
    pub fn start(handle: ServerHandle, config: NetConfig) -> io::Result<NetServer> {
        poll::raise_nofile_limit();
        let listeners = bind_listeners(&config.addr, config.io_threads.max(1))?;
        let local_addr = listeners[0].local_addr()?;

        // Shared across every I/O thread: metrics, the session-route
        // registry the detection sink consults, and the engine session
        // id allocator (ids must stay unique edge-wide).
        let inner: Arc<NetMetricsInner> = Arc::new(NetMetricsInner::default());
        let registry: Registry = Arc::new(Mutex::new(HashMap::new()));
        let epoch = Instant::now();
        install_detection_sink(&handle, &registry, &inner, epoch);
        let scrape = handle.registry();
        install_net_collector(&scrape, &inner, listeners.len());
        let decode_stage = handle.telemetry().stages.decode.clone();
        let session_ids = Arc::new(AtomicU64::new(NET_SESSION_BASE));

        let stop = Arc::new(AtomicBool::new(false));
        let idle_timeout =
            (config.idle_timeout_ms > 0).then(|| Duration::from_millis(config.idle_timeout_ms));
        let mut threads = Vec::with_capacity(listeners.len());
        for (t, listener) in listeners.into_iter().enumerate() {
            let mut poller = Poller::new()?;
            poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
            let (dirty_tx, dirty_rx) = unbounded::<u64>();
            let io = IoLoop {
                listener,
                poller,
                conns: HashMap::new(),
                attention: HashSet::new(),
                next_conn: TOKEN_LISTENER + 1,
                session_ids: session_ids.clone(),
                dirty_tx,
                dirty_rx,
                registry: registry.clone(),
                handle: handle.clone(),
                config: config.clone(),
                metrics: inner.clone(),
                epoch,
                events: Vec::with_capacity(256),
                scratch: Vec::with_capacity(512),
                stop: stop.clone(),
                scrape: scrape.clone(),
                decode_stage: decode_stage.clone(),
                decode_sampler: handle.telemetry().sampler(),
                idle_timeout,
                idle_sweep_at: Instant::now(),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gesto-net-{t}"))
                    .spawn(move || io.run())?,
            );
        }
        Ok(NetServer {
            local_addr,
            stop,
            threads,
            metrics: NetMetrics { inner },
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The edge's metric counters and latency histogram.
    pub fn metrics(&self) -> NetMetrics {
        self.metrics.clone()
    }

    /// Stops the I/O thread, closing every connection (each receives a
    /// best-effort `Error(Shutdown)` frame first). The engine behind
    /// the edge keeps running.
    pub fn shutdown(mut self) {
        self.stop_thread();
    }

    fn stop_thread(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_thread();
    }
}

/// Exports the edge's counters into the engine's scrape registry as
/// the `gesto_net_*` families, read live at scrape time. Registered
/// once per [`NetServer::start`]; start at most one edge per engine or
/// the families will carry duplicate series.
fn install_net_collector(
    scrape: &Arc<gesto_telemetry::Registry>,
    inner: &Arc<NetMetricsInner>,
    io_threads: usize,
) {
    let m = inner.clone();
    scrape.register_collector(move |set| {
        set.gauge(
            "gesto_net_io_threads",
            "I/O threads serving the edge (>1 means SO_REUSEPORT listener sharding)",
            &[],
            io_threads as f64,
        );
        let c = |set: &mut gesto_telemetry::SampleSet, name: &str, help: &str, v: &AtomicU64| {
            set.counter(name, help, &[], v.load(Ordering::Relaxed));
        };
        c(
            set,
            "gesto_net_connections_accepted_total",
            "TCP connections accepted by the network edge",
            &m.connections_accepted,
        );
        c(
            set,
            "gesto_net_connections_closed_total",
            "TCP connections fully torn down",
            &m.connections_closed,
        );
        set.gauge(
            "gesto_net_connections_active",
            "Connections currently registered with the event loop",
            &[],
            m.connections_active.load(Ordering::Relaxed) as f64,
        );
        c(
            set,
            "gesto_net_sessions_opened_total",
            "Engine sessions opened over the wire",
            &m.sessions_opened,
        );
        c(
            set,
            "gesto_net_frames_received_total",
            "Skeleton frames decoded off the wire and accepted",
            &m.frames_received,
        );
        c(
            set,
            "gesto_net_batches_received_total",
            "Frame batches decoded off the wire and accepted",
            &m.batches_received,
        );
        c(
            set,
            "gesto_net_batches_parked_total",
            "Batches parked on their connection by shard backpressure",
            &m.batches_parked,
        );
        c(
            set,
            "gesto_net_batches_rejected_total",
            "Batches refused with a QueueFull error frame",
            &m.batches_rejected,
        );
        c(
            set,
            "gesto_net_detections_sent_total",
            "Detection messages pushed onto client connections",
            &m.detections_sent,
        );
        c(
            set,
            "gesto_net_protocol_errors_total",
            "Malformed or out-of-contract client messages",
            &m.protocol_errors,
        );
        c(
            set,
            "gesto_net_slow_consumer_drops_total",
            "Connections condemned because their detection outbox overflowed",
            &m.slow_consumer_drops,
        );
        c(
            set,
            "gesto_net_detections_dropped_total",
            "Detection messages shed because their connection's outbox was full",
            &m.detections_dropped,
        );
        c(
            set,
            "gesto_net_detection_notices_total",
            "DetectionsDropped notice frames queued to slow-reading peers",
            &m.detection_notices,
        );
        c(
            set,
            "gesto_net_sessions_rejected_total",
            "Session binds refused by admission control (overload or per-connection cap)",
            &m.sessions_rejected,
        );
        c(
            set,
            "gesto_net_idle_closed_total",
            "Connections closed by the idle timeout",
            &m.idle_closed,
        );
        c(
            set,
            "gesto_net_credit_stalls_total",
            "Times a connection's reads were paused by shard backpressure \
             (its credit window left to dry up)",
            &m.credit_stalls,
        );
        c(
            set,
            "gesto_net_http_requests_total",
            "HTTP requests served off the multiplexed port",
            &m.http_requests,
        );
        set.counter(
            "gesto_net_client_reconnects_total",
            "Successful NetClient redials in this process (clients co-located \
             with the edge, e.g. benches and tests)",
            &[],
            client_reconnects_total(),
        );
        c(
            set,
            "gesto_net_bytes_in_total",
            "Bytes read off client sockets",
            &m.bytes_in,
        );
        c(
            set,
            "gesto_net_bytes_out_total",
            "Bytes written to client sockets",
            &m.bytes_out,
        );
        set.histogram(
            "gesto_net_e2e_latency_us",
            "Last accepted wire batch to detection entering the socket outbox, \
             per session, in microseconds",
            &[],
            m.latency.snapshot(),
        );
    });
}

/// Registers the engine-side sink that routes detections back onto
/// client connections (runs on shard threads).
fn install_detection_sink(
    handle: &ServerHandle,
    registry: &Registry,
    inner: &Arc<NetMetricsInner>,
    epoch: Instant,
) {
    let registry = registry.clone();
    let inner = inner.clone();
    // Pre-encoded non-fatal notice queued (once per congestion episode)
    // when a slow consumer forces a detection to be shed; §7.1 of
    // docs/PROTOCOL.md.
    let mut notice = Vec::with_capacity(32);
    wire::encode(
        &Message::Error {
            code: ErrorCode::DetectionsDropped,
            detail: "detections shed".to_owned(),
        },
        &mut notice,
    );
    handle.on_detection(Arc::new(move |sid, det| {
        let route = registry.lock().get(&sid.0).cloned();
        let Some(route) = route else { return };
        let events = if route.want_events {
            det.events.iter().map(|t| t.values().to_vec()).collect()
        } else {
            Vec::new()
        };
        let mut buf = Vec::with_capacity(64);
        wire::encode(
            &Message::Detection(WireDetection {
                session: route.client_session,
                ts: det.ts,
                started_at: det.started_at,
                gesture: det.gesture.clone(),
                events,
            }),
            &mut buf,
        );
        if !route.outbox.send_droppable(&buf, &notice) {
            // Shed (or the connection died): counted inside the outbox;
            // neither `detections_sent` nor latency observes it.
            return;
        }
        inner.detections_sent.fetch_add(1, Ordering::Relaxed);
        let now = epoch.elapsed().as_micros() as u64;
        let rx = route.last_rx_us.load(Ordering::Acquire);
        if now >= rx {
            inner.latency.record(now - rx);
        }
    }));
}

/// Why a connection is being torn down.
enum Close {
    /// Clean close (peer hangup, completed `Bye`).
    Quiet,
    /// Protocol violation: send this error first, then close.
    Fault(ErrorCode, &'static str),
}

/// The single-threaded event loop behind [`NetServer`].
struct IoLoop {
    listener: TcpListener,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    /// Connections needing per-tick service (parked batches, pending
    /// close acks, draining flushes).
    attention: HashSet<u64>,
    next_conn: u64,
    /// Edge-wide engine session id allocator, shared by every I/O
    /// thread (connection tokens are loop-local; session ids are not).
    session_ids: Arc<AtomicU64>,
    dirty_tx: Sender<u64>,
    dirty_rx: Receiver<u64>,
    registry: Registry,
    handle: ServerHandle,
    config: NetConfig,
    metrics: Arc<NetMetricsInner>,
    epoch: Instant,
    events: Vec<Event>,
    scratch: Vec<u8>,
    stop: Arc<AtomicBool>,
    /// The engine's metric registry, rendered for `GET /metrics`.
    scrape: Arc<gesto_telemetry::Registry>,
    /// `gesto_stage_duration_ns{stage="decode"}` — wire decode time.
    decode_stage: Arc<gesto_telemetry::Histogram>,
    /// 1-in-N countdown gating the decode stage timer.
    decode_sampler: gesto_telemetry::Sampler,
    /// `None` disables the idle sweep.
    idle_timeout: Option<Duration>,
    /// Next moment the idle sweep runs.
    idle_sweep_at: Instant,
}

impl IoLoop {
    fn run(mut self) {
        loop {
            if self.stop.load(Ordering::Acquire) {
                self.shutdown_all();
                return;
            }
            self.events.clear();
            let timeout_ms = if self.attention.is_empty() { 10 } else { 1 };
            let mut events = std::mem::take(&mut self.events);
            if self.poller.wait(&mut events, timeout_ms).is_err() {
                // Transient poller failure: behave like a timeout.
                events.clear();
            }
            for ev in &events {
                if ev.token == TOKEN_LISTENER {
                    self.accept_ready();
                } else {
                    self.on_conn_event(ev.token, ev.readable, ev.writable);
                }
            }
            self.events = events;
            // Outboxes that spilled (or died) since the last tick.
            let dirty: Vec<u64> = self.dirty_rx.try_iter().collect();
            for id in dirty {
                self.on_dirty(id);
            }
            let ids: Vec<u64> = self.attention.iter().copied().collect();
            for id in ids {
                self.service(id);
            }
            if let Some(timeout) = self.idle_timeout {
                let now = Instant::now();
                if now >= self.idle_sweep_at {
                    self.sweep_idle(now, timeout);
                    let interval =
                        (timeout / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
                    self.idle_sweep_at = now + interval;
                }
            }
        }
    }

    /// Closes connections that have sent nothing for the configured
    /// idle timeout. Paused/parked connections are exempt (they are
    /// held by backpressure, not absent), as are those mid-close or
    /// mid-drain.
    fn sweep_idle(&mut self, now: Instant, timeout: Duration) {
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                !c.paused
                    && !c.draining
                    && c.parked.is_empty()
                    && c.closing.is_empty()
                    && now.duration_since(c.last_activity) >= timeout
            })
            .map(|(id, _)| *id)
            .collect();
        for id in idle {
            let Some(conn) = self.conns.remove(&id) else {
                continue;
            };
            self.metrics.idle_closed.fetch_add(1, Ordering::Relaxed);
            let close = if conn.http {
                // Mid-request HTTP peer: no GSW1 error frame.
                Close::Quiet
            } else {
                Close::Fault(ErrorCode::Shutdown, "connection idle timeout")
            };
            self.finish_conn(conn, Some(close));
        }
    }

    // ----- accept -----------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.accept_one(stream),
                Err(e) if would_block(&e) => break,
                Err(_) => break,
            }
        }
    }

    fn accept_one(&mut self, stream: TcpStream) {
        if self.conns.len() >= self.config.max_connections {
            return; // Dropped: the cap is the last line of defence.
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let id = self.next_conn;
        self.next_conn += 1;
        let stream = Arc::new(stream);
        if self
            .poller
            .add(stream.as_raw_fd(), id, Interest::READ)
            .is_err()
        {
            return;
        }
        let outbox = Arc::new(Outbox::new(
            stream.clone(),
            self.metrics.clone(),
            self.dirty_tx.clone(),
            id,
        ));
        self.conns.insert(id, Conn::new(id, stream, outbox));
        self.metrics
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        self.metrics
            .connections_active
            .fetch_add(1, Ordering::Relaxed);
    }

    // ----- per-connection events --------------------------------------

    fn on_conn_event(&mut self, id: u64, readable: bool, writable: bool) {
        let Some(mut conn) = self.conns.remove(&id) else {
            return;
        };
        let mut close = None;
        if writable && conn.outbox.flush() && !conn.outbox.is_dead() {
            // Spill drained; drop write interest.
            let interest = Interest {
                read: !conn.paused,
                write: false,
            };
            let _ = self.poller.modify(conn.stream.as_raw_fd(), id, interest);
        }
        if conn.outbox.is_dead() {
            close = Some(Close::Quiet);
        }
        if close.is_none() && readable && !conn.paused {
            close = self.drain_readable(&mut conn);
        }
        self.finish_conn(conn, close);
    }

    /// Reads and processes every available message on `conn`.
    fn drain_readable(&mut self, conn: &mut Conn) -> Option<Close> {
        let closed = conn.fill(&self.metrics) == ReadOutcome::Closed;
        if conn.http || (!conn.greeted && looks_like_http(&conn.rbuf)) {
            conn.http = true;
            return self.serve_http(conn, closed);
        }
        loop {
            if conn.paused {
                // A parked batch mid-buffer: stop decoding, keep bytes.
                break;
            }
            let decode_t0 = self.decode_sampler.sample().then(Instant::now);
            match conn.next_message() {
                Ok(Some(msg)) => {
                    if let Some(t0) = decode_t0 {
                        self.decode_stage.record(t0.elapsed().as_nanos() as u64);
                    }
                    if let Some(close) = self.on_message(conn, msg) {
                        return Some(close);
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    return Some(Close::Fault(ErrorCode::Malformed, "undecodable message"));
                }
            }
        }
        self.maybe_grant_credit(conn);
        if closed {
            Some(Close::Quiet)
        } else {
            None
        }
    }

    /// Serves one plaintext HTTP request (`/metrics`, `/healthz`) on a
    /// connection whose first bytes were an HTTP method, then drains
    /// and closes it through the normal completion path.
    fn serve_http(&mut self, conn: &mut Conn, closed: bool) -> Option<Close> {
        if conn.draining {
            // Response already queued; nothing further to read.
            return None;
        }
        let Some(end) = find_header_end(&conn.rbuf) else {
            if closed || conn.rbuf.len() > HTTP_MAX_REQUEST {
                return Some(Close::Quiet);
            }
            return None;
        };
        self.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
        let head = String::from_utf8_lossy(&conn.rbuf[..end]).into_owned();
        let mut parts = head.split_whitespace();
        let method = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("");
        let (status, content_type, body) = match (method, path) {
            ("GET" | "HEAD", "/metrics") => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                self.scrape.render(),
            ),
            ("GET" | "HEAD", "/healthz") => {
                // Overload-aware liveness: healthy/shedding answer 200
                // (the process is alive and serving, possibly degraded),
                // rejecting answers 503 so load balancers steer away.
                let state = self.handle.overload_state();
                let status = match state {
                    crate::metrics::OverloadState::Rejecting => "503 Service Unavailable",
                    _ => "200 OK",
                };
                (
                    status,
                    "text/plain; charset=utf-8",
                    format!("{}\n", state.as_str()),
                )
            }
            ("GET" | "HEAD", "/readyz") => {
                // Readiness: 503 until startup recovery finished and no
                // shard worker is mid-respawn (plans rebroadcast).
                if self.handle.is_ready() {
                    ("200 OK", "text/plain; charset=utf-8", "ready\n".to_owned())
                } else {
                    (
                        "503 Service Unavailable",
                        "text/plain; charset=utf-8",
                        "not ready\n".to_owned(),
                    )
                }
            }
            ("GET" | "HEAD", _) => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_owned(),
            ),
            _ => (
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "only GET and HEAD\n".to_owned(),
            ),
        };
        let mut resp = Vec::with_capacity(160 + body.len());
        resp.extend_from_slice(
            format!(
                "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n",
                body.len(),
            )
            .as_bytes(),
        );
        if method != "HEAD" {
            resp.extend_from_slice(body.as_bytes());
        }
        conn.outbox.send(&resp);
        conn.rbuf.clear();
        conn.draining = true;
        self.attention.insert(conn.id);
        None
    }

    fn on_message(&mut self, conn: &mut Conn, msg: Message) -> Option<Close> {
        if !conn.greeted {
            return match msg {
                Message::Hello { version, flags } => self.on_hello(conn, version, flags),
                _ => Some(Close::Fault(
                    ErrorCode::Malformed,
                    "first message must be Hello",
                )),
            };
        }
        match msg {
            Message::Hello { .. } => Some(Close::Fault(ErrorCode::Malformed, "duplicate Hello")),
            Message::OpenSession { session } => {
                // A refused bind already queued its error frame.
                let _ = self.bind_session(conn, session);
                None
            }
            Message::FrameBatch { session, frames } => self.on_frame_batch(conn, session, frames),
            Message::CloseSession { session } => {
                self.begin_close(conn, session);
                None
            }
            Message::Ping { token } => {
                conn.send(&Message::Pong { token }, &mut self.scratch);
                None
            }
            Message::Bye => {
                conn.draining = true;
                let bound: Vec<u64> = conn.sessions.keys().copied().collect();
                for sid in bound {
                    self.begin_close(conn, sid);
                }
                self.attention.insert(conn.id);
                None
            }
            Message::Deploy { text } => self.on_control(conn, |handle| handle.deploy_text(&text)),
            Message::Undeploy { name } => self.on_control(conn, |handle| handle.undeploy(&name)),
            Message::SetConfig { key, value } => {
                self.on_control(conn, |handle| handle.set_config(&key, &value))
            }
            // Server→client messages have no business arriving here.
            Message::HelloAck { .. }
            | Message::Credit { .. }
            | Message::Detection(_)
            | Message::Error { .. }
            | Message::Pong { .. }
            | Message::SessionClosed { .. }
            | Message::ControlAck { .. } => Some(Close::Fault(
                ErrorCode::Malformed,
                "server-to-client message from client",
            )),
        }
    }

    /// Runs one control operation against the engine and acks it in
    /// connection FIFO order. A control message on a data-only edge
    /// gets a `ControlDisabled` error frame; the connection survives.
    ///
    /// On a durable engine the op blocks on the journal append (its
    /// fsync policy) before the ack — exactly the "journaled before
    /// acknowledged" contract of `docs/DURABILITY.md`, stretched to the
    /// wire. Control ops are rare; the event loop tolerates the stall.
    fn on_control(
        &mut self,
        conn: &mut Conn,
        op: impl FnOnce(&ServerHandle) -> Result<(), ServeError>,
    ) -> Option<Close> {
        if !self.config.allow_control {
            self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            conn.send(
                &Message::Error {
                    code: ErrorCode::ControlDisabled,
                    detail: "edge started without allow_control".to_owned(),
                },
                &mut self.scratch,
            );
            return None;
        }
        let error = op(&self.handle).err().map(|e| e.to_string());
        conn.send(&Message::ControlAck { error }, &mut self.scratch);
        None
    }

    fn on_hello(&mut self, conn: &mut Conn, version: u16, flags: u16) -> Option<Close> {
        if version < 1 {
            return Some(Close::Fault(
                ErrorCode::UnsupportedVersion,
                "client version 0",
            ));
        }
        conn.greeted = true;
        conn.flags = flags & wire::SUPPORTED_FLAGS;
        conn.credits = i64::from(self.config.initial_credits);
        conn.send(
            &Message::HelloAck {
                version: version.min(wire::VERSION),
                flags: conn.flags,
                credits: self.config.initial_credits,
            },
            &mut self.scratch,
        );
        None
    }

    fn on_frame_batch(
        &mut self,
        conn: &mut Conn,
        session: u64,
        frames: Vec<gesto_kinect::SkeletonFrame>,
    ) -> Option<Close> {
        let n = frames.len() as i64;
        if n > conn.credits {
            self.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return Some(Close::Fault(
                ErrorCode::CreditExceeded,
                "batch exceeds remaining credit",
            ));
        }
        conn.credits -= n;
        conn.credit_debt += n as u32;
        let Some(global) = self.bind_session(conn, session) else {
            // Admission refused the bind: the batch is dropped (the
            // refusal frame is already queued) and the frames' credit
            // returns to the client through the accrued debt.
            return None;
        };
        if let Some(route) = self.registry.lock().get(&global) {
            route
                .last_rx_us
                .store(self.epoch.elapsed().as_micros() as u64, Ordering::Release);
        }
        self.metrics
            .frames_received
            .fetch_add(n as u64, Ordering::Relaxed);
        self.metrics
            .batches_received
            .fetch_add(1, Ordering::Relaxed);
        if !conn.parked.is_empty() {
            if conn.parked.len() >= self.config.max_parked_batches {
                // The connection already buffers its cap of parked
                // batches: drop instead of growing without bound.
                self.metrics
                    .batches_rejected
                    .fetch_add(1, Ordering::Relaxed);
                conn.send(
                    &Message::Error {
                        code: ErrorCode::QueueFull,
                        detail: "parked-batch cap reached, batch dropped".to_owned(),
                    },
                    &mut self.scratch,
                );
                return None;
            }
            // FIFO per connection: behind an already-parked batch.
            conn.parked.push_back((global, frames));
            return None;
        }
        self.offer(conn, global, frames)
    }

    /// Hands a batch to the engine, translating shard backpressure into
    /// connection state (park/pause) or protocol errors.
    fn offer(
        &mut self,
        conn: &mut Conn,
        global: u64,
        frames: Vec<gesto_kinect::SkeletonFrame>,
    ) -> Option<Close> {
        match self.handle.offer_batch(SessionId(global), frames) {
            Ok(OfferOutcome::Queued) => None,
            Ok(OfferOutcome::Full(frames)) => {
                if conn.parked.len() >= self.config.max_parked_batches {
                    // Defensive bound (normally unreachable: a parked
                    // connection is paused): drop rather than park.
                    self.metrics
                        .batches_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    conn.send(
                        &Message::Error {
                            code: ErrorCode::QueueFull,
                            detail: "parked-batch cap reached, batch dropped".to_owned(),
                        },
                        &mut self.scratch,
                    );
                    return None;
                }
                conn.parked.push_back((global, frames));
                self.metrics.batches_parked.fetch_add(1, Ordering::Relaxed);
                self.pause(conn);
                self.attention.insert(conn.id);
                None
            }
            Err(ServeError::QueueFull { .. }) => {
                self.metrics
                    .batches_rejected
                    .fetch_add(1, Ordering::Relaxed);
                conn.send(
                    &Message::Error {
                        code: ErrorCode::QueueFull,
                        detail: "shard queue full, batch dropped".to_owned(),
                    },
                    &mut self.scratch,
                );
                None
            }
            Err(_) => Some(Close::Fault(ErrorCode::Shutdown, "engine shut down")),
        }
    }

    /// Resolves (or creates) the engine session bound to a client id.
    ///
    /// A **new** bind is subject to admission control and returns `None`
    /// when refused — the connection hit its session cap, or the server
    /// is in the `Rejecting` overload state. Refusals queue a non-fatal
    /// `Overloaded` error frame (§7.1 of `docs/PROTOCOL.md`); already
    /// bound sessions always resolve.
    fn bind_session(&mut self, conn: &mut Conn, client_sid: u64) -> Option<u64> {
        if let Some(b) = conn.sessions.get(&client_sid) {
            return Some(b.global);
        }
        let refusal = if conn.sessions.len() >= self.config.max_sessions_per_conn {
            Some("connection session cap reached")
        } else if self.handle.overload_state() == crate::metrics::OverloadState::Rejecting {
            Some("server rejecting new sessions under overload")
        } else {
            None
        };
        if let Some(detail) = refusal {
            self.metrics
                .sessions_rejected
                .fetch_add(1, Ordering::Relaxed);
            conn.send(
                &Message::Error {
                    code: ErrorCode::Overloaded,
                    detail: detail.to_owned(),
                },
                &mut self.scratch,
            );
            return None;
        }
        let global = self.session_ids.fetch_add(1, Ordering::Relaxed);
        let _ = self.handle.open_session(SessionId(global));
        let route = Arc::new(SessionRoute {
            client_session: client_sid,
            outbox: conn.outbox.clone(),
            want_events: conn.flags & wire::FLAG_WANT_EVENTS != 0,
            last_rx_us: AtomicU64::new(self.epoch.elapsed().as_micros() as u64),
        });
        self.registry.lock().insert(global, route);
        conn.sessions.insert(client_sid, SessionBinding { global });
        self.metrics.sessions_opened.fetch_add(1, Ordering::Relaxed);
        Some(global)
    }

    /// Starts an asynchronous session close; the ack is collected by
    /// [`Self::service`], which then sends `SessionClosed`.
    fn begin_close(&mut self, conn: &mut Conn, client_sid: u64) {
        let Some(binding) = conn.sessions.remove(&client_sid) else {
            // Unknown session: idempotent close.
            conn.send(
                &Message::SessionClosed {
                    session: client_sid,
                },
                &mut self.scratch,
            );
            return;
        };
        match self.handle.close_session_begin(SessionId(binding.global)) {
            Ok(ack) => {
                conn.closing.push((client_sid, binding.global, ack));
                self.attention.insert(conn.id);
            }
            Err(_) => {
                self.registry.lock().remove(&binding.global);
                conn.send(
                    &Message::SessionClosed {
                        session: client_sid,
                    },
                    &mut self.scratch,
                );
            }
        }
    }

    // ----- flow control ----------------------------------------------

    fn pause(&mut self, conn: &mut Conn) {
        if conn.paused {
            return;
        }
        conn.paused = true;
        self.metrics.credit_stalls.fetch_add(1, Ordering::Relaxed);
        let interest = Interest {
            read: false,
            write: conn.outbox.has_pending(),
        };
        let _ = self
            .poller
            .modify(conn.stream.as_raw_fd(), conn.id, interest);
    }

    fn resume(&mut self, conn: &mut Conn) {
        if !conn.paused {
            return;
        }
        conn.paused = false;
        let interest = Interest {
            read: true,
            write: conn.outbox.has_pending(),
        };
        let _ = self
            .poller
            .modify(conn.stream.as_raw_fd(), conn.id, interest);
    }

    /// Grants accumulated credit back once a quarter of the window is
    /// owed — but never while backpressure holds the connection parked
    /// (that is the whole mechanism: no credit, no new frames).
    fn maybe_grant_credit(&mut self, conn: &mut Conn) {
        if conn.paused || !conn.parked.is_empty() || conn.draining {
            return;
        }
        let threshold = (self.config.initial_credits / 4).max(1);
        if conn.credit_debt >= threshold {
            let grant = conn.credit_debt;
            conn.credit_debt = 0;
            conn.credits += i64::from(grant);
            conn.send(&Message::Credit { frames: grant }, &mut self.scratch);
        }
    }

    // ----- per-tick service ------------------------------------------

    /// Outbox transitioned to "has spill" or died since last tick.
    fn on_dirty(&mut self, id: u64) {
        let Some(conn) = self.conns.get(&id) else {
            return;
        };
        if conn.outbox.is_dead() {
            let conn = self.conns.remove(&id).expect("present");
            self.teardown(conn);
            return;
        }
        let interest = Interest {
            read: !conn.paused,
            write: true,
        };
        let _ = self.poller.modify(conn.stream.as_raw_fd(), id, interest);
    }

    /// Services a connection on the attention list: retries parked
    /// batches, collects close acks, completes drains.
    fn service(&mut self, id: u64) {
        let Some(mut conn) = self.conns.remove(&id) else {
            self.attention.remove(&id);
            return;
        };
        let mut close = None;

        // Parked batches: retry in order; stop at the first still-full.
        while let Some((global, frames)) = conn.parked.pop_front() {
            match self.handle.offer_batch(SessionId(global), frames) {
                Ok(OfferOutcome::Queued) => continue,
                Ok(OfferOutcome::Full(frames)) => {
                    conn.parked.push_front((global, frames));
                    break;
                }
                Err(ServeError::QueueFull { .. }) => {
                    self.metrics
                        .batches_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Err(_) => {
                    close = Some(Close::Fault(ErrorCode::Shutdown, "engine shut down"));
                    break;
                }
            }
        }
        if close.is_none() && conn.parked.is_empty() && conn.paused {
            self.resume(&mut conn);
            // Resuming may leave complete messages already buffered.
            close = self.drain_readable(&mut conn);
        }

        // Close acks.
        if close.is_none() {
            let mut still = Vec::new();
            for (client_sid, global, ack) in std::mem::take(&mut conn.closing) {
                if ack.try_iter().next().is_some() {
                    self.registry.lock().remove(&global);
                    conn.send(
                        &Message::SessionClosed {
                            session: client_sid,
                        },
                        &mut self.scratch,
                    );
                } else {
                    still.push((client_sid, global, ack));
                }
            }
            conn.closing = still;
        }

        // Drain completion: Bye processed, all sessions closed, outbox
        // flushed — the connection ends cleanly.
        if close.is_none()
            && conn.draining
            && conn.closing.is_empty()
            && conn.parked.is_empty()
            && !conn.outbox.has_pending()
        {
            close = Some(Close::Quiet);
        }

        let needs_attention = !conn.parked.is_empty()
            || !conn.closing.is_empty()
            || (conn.draining && conn.outbox.has_pending());
        if close.is_none() && !needs_attention {
            self.attention.remove(&id);
        }
        self.finish_conn(conn, close);
    }

    // ----- teardown ---------------------------------------------------

    fn finish_conn(&mut self, conn: Conn, close: Option<Close>) {
        match close {
            None => {
                self.conns.insert(conn.id, conn);
            }
            Some(Close::Quiet) => self.teardown(conn),
            Some(Close::Fault(code, detail)) => {
                conn.send(
                    &Message::Error {
                        code,
                        detail: detail.to_owned(),
                    },
                    &mut self.scratch,
                );
                self.teardown(conn);
            }
        }
    }

    fn teardown(&mut self, mut conn: Conn) {
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        conn.outbox.kill();
        for (_, binding) in conn.sessions.drain() {
            self.registry.lock().remove(&binding.global);
            let _ = self.handle.close_session_begin(SessionId(binding.global));
        }
        for (_, global, _) in conn.closing.drain(..) {
            self.registry.lock().remove(&global);
        }
        self.attention.remove(&conn.id);
        self.metrics
            .connections_closed
            .fetch_add(1, Ordering::Relaxed);
        self.metrics
            .connections_active
            .fetch_sub(1, Ordering::Relaxed);
    }

    fn shutdown_all(&mut self) {
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            if let Some(conn) = self.conns.remove(&id) {
                conn.send(
                    &Message::Error {
                        code: ErrorCode::Shutdown,
                        detail: "server shutting down".to_owned(),
                    },
                    &mut self.scratch,
                );
                conn.outbox.flush();
                self.teardown(conn);
            }
        }
    }
}

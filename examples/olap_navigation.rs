//! Gesture-controlled OLAP navigation — the paper's §1 motivation
//! ("gesture-controlled interaction with OLAP databases", cf. the
//! authors' Data3 demo).
//!
//! Teaches four gestures, binds them to OLAP navigation operators on a
//! small in-memory sales cube, then simulates a user analysing the cube
//! by gesturing.
//!
//! ```sh
//! cargo run --example olap_navigation
//! ```

use gesto::kinect::{gestures, GestureSpec, NoiseModel, Performer, Persona};
use gesto::GestureSystem;

/// A toy OLAP cube: sales by (region, product), navigable by dimension
/// level.
struct SalesCube {
    level: usize,
    levels: Vec<&'static str>,
    pivoted: bool,
}

impl SalesCube {
    fn new() -> Self {
        Self {
            level: 0,
            levels: vec!["year", "quarter", "month", "day"],
            pivoted: false,
        }
    }

    fn drill_down(&mut self) {
        if self.level + 1 < self.levels.len() {
            self.level += 1;
        }
    }

    fn roll_up(&mut self) {
        self.level = self.level.saturating_sub(1);
    }

    fn pivot(&mut self) {
        self.pivoted = !self.pivoted;
    }

    fn describe(&self) -> String {
        let (rows, cols) = if self.pivoted {
            ("product", "region")
        } else {
            ("region", "product")
        };
        format!(
            "view: {rows} x {cols} at {} granularity",
            self.levels[self.level]
        )
    }
}

fn main() {
    let system = GestureSystem::new();
    let persona = Persona::reference().with_noise(NoiseModel::realistic());

    // 1. Teach the navigation gestures (3 samples each).
    let bindings: Vec<(&str, GestureSpec, &str)> = vec![
        ("swipe_right", gestures::swipe_right(), "drill-down"),
        ("swipe_left", gestures::swipe_left(), "roll-up"),
        ("circle", gestures::circle(), "pivot"),
        ("push", gestures::push(), "select cell"),
    ];
    println!("== teaching {} navigation gestures ==", bindings.len());
    for (name, spec, op) in &bindings {
        let samples: Vec<_> = (0..3)
            .map(|seed| {
                let mut p = Performer::new(
                    persona
                        .clone()
                        .with_seed(*name.as_bytes().first().unwrap() as u64 + seed),
                    0,
                );
                p.render(spec)
            })
            .collect();
        let def = system.teach(name, &samples).expect("teachable");
        println!("  {name:<12} -> {op:<12} ({} poses)", def.pose_count());
    }

    // 2. Cross-check the learned set for overlaps (§3.3.3).
    let report = gesto::learn::validate::analyze_set(&system.store().definitions());
    if report.is_clean() {
        println!("\ncross-check: no window overlaps between gestures");
    } else {
        for p in &report.pairs {
            println!(
                "\ncross-check: '{}' overlaps '{}' at {} pose pairs (subsumed: {})",
                p.a,
                p.b,
                p.intersecting_poses.len(),
                p.b_subsumed_in_a
            );
        }
    }

    // 3. Simulate an analysis session: the user gestures, detections
    // drive the cube.
    println!("\n== gesture-driven analysis session ==");
    let mut cube = SalesCube::new();
    println!("  start           : {}", cube.describe());
    let script = ["swipe_right", "swipe_right", "circle", "swipe_left", "push"];
    for (i, gesture_name) in script.iter().enumerate() {
        let spec = bindings
            .iter()
            .find(|(n, _, _)| n == gesture_name)
            .map(|(_, s, _)| s.clone())
            .expect("scripted gesture taught");
        let mut p = Performer::new(persona.clone().with_seed(500 + i as u64), 0);
        let detections = system.run_frames(&p.render(&spec)).expect("stream ok");
        system.engine().reset_runs();

        let detected: Vec<&str> = detections.iter().map(|d| d.gesture.as_str()).collect();
        for d in &detected {
            match *d {
                "swipe_right" => cube.drill_down(),
                "swipe_left" => cube.roll_up(),
                "circle" => cube.pivot(),
                "push" => println!("  [selected cell]"),
                _ => {}
            }
        }
        println!(
            "  {:<15} : {}  (detected: {:?})",
            gesture_name,
            cube.describe(),
            detected
        );
    }

    // 4. Runtime exchange (§4): rebind swipe_right by replacing the
    // deployed query with a stricter variant — no application restart.
    println!("\n== runtime query exchange ==");
    let stats_before = system.engine().stats("swipe_right").expect("deployed");
    println!(
        "  swipe_right detections so far: {}",
        stats_before.detections
    );
    system.forget("swipe_right").expect("undeploy");
    println!(
        "  swipe_right undeployed; engine now runs {} queries",
        system.engine().len()
    );
}

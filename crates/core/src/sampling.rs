//! Distance-based sampling (§3.3.1, Fig. 4 top).
//!
//! Compresses a 30 Hz gesture path into few characteristic points: the
//! first tuple becomes the initial cluster centroid and reference; a new
//! window (cluster) starts whenever a point's distance from the current
//! reference exceeds `max_dist`. This is the density-based-clustering
//! relative of the paper (it cites DBSCAN \[2\]): consecutive points closer
//! than the threshold collapse into one cluster.

use serde::{Deserialize, Serialize};

use crate::metric::{Metric, Threshold};
use crate::model::PathPoint;

/// What a cluster reports as its characteristic point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CentroidMode {
    /// The reference point that opened the cluster (paper behaviour:
    /// "the first tuple is used as initial cluster centroid").
    #[default]
    Reference,
    /// Mean of all cluster members (smoother under sensor noise).
    Mean,
}

/// Sampling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Distance-based clustering along the path.
    DistanceBased {
        /// Point metric.
        metric: Metric,
        /// `max_dist` threshold.
        threshold: Threshold,
        /// Cluster representative.
        centroid: CentroidMode,
    },
    /// Keep every `n`-th tuple (a time-based metric at a fixed rate).
    EveryN(usize),
    /// Keep one tuple per `ms` of stream time.
    TimeDelta(i64),
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::DistanceBased {
            metric: Metric::default(),
            threshold: Threshold::default(),
            centroid: CentroidMode::default(),
        }
    }
}

/// Total path length under a metric (the "total deviation observed").
pub fn path_length(points: &[PathPoint], metric: Metric) -> f64 {
    points
        .windows(2)
        .map(|w| metric.distance(&w[0].feat, &w[1].feat))
        .sum()
}

/// Extracts the characteristic points of one sample path.
///
/// Guarantees:
/// - the first input point is always the first output point;
/// - the last input point is always represented (appended as a final
///   characteristic point when it is not already the last reference);
/// - outputs are in path order;
/// - the cluster count is monotone non-increasing in `max_dist`; the
///   optional end anchor can add one further point, so the total output
///   count is monotone up to ±1.
pub fn sample_path(points: &[PathPoint], strategy: Strategy) -> Vec<PathPoint> {
    match strategy {
        Strategy::EveryN(n) => {
            let n = n.max(1);
            let mut out: Vec<PathPoint> = points.iter().step_by(n).cloned().collect();
            if let (Some(last_out), Some(last_in)) = (out.last(), points.last()) {
                if last_out.ts != last_in.ts {
                    out.push(last_in.clone());
                }
            }
            out
        }
        Strategy::TimeDelta(ms) => {
            let ms = ms.max(1);
            let mut out: Vec<PathPoint> = Vec::new();
            for p in points {
                match out.last() {
                    None => out.push(p.clone()),
                    Some(prev) if p.ts - prev.ts >= ms => out.push(p.clone()),
                    _ => {}
                }
            }
            if let (Some(last_out), Some(last_in)) = (out.last(), points.last()) {
                if last_out.ts != last_in.ts {
                    out.push(last_in.clone());
                }
            }
            out
        }
        Strategy::DistanceBased {
            metric,
            threshold,
            centroid,
        } => distance_based(points, metric, threshold, centroid),
    }
}

fn distance_based(
    points: &[PathPoint],
    metric: Metric,
    threshold: Threshold,
    centroid: CentroidMode,
) -> Vec<PathPoint> {
    if points.is_empty() {
        return Vec::new();
    }
    let total = path_length(points, metric);
    let max_dist = threshold.resolve(total).max(0.0);
    if total <= f64::EPSILON || max_dist <= f64::EPSILON {
        // No movement (or degenerate threshold): a single pose.
        return vec![points[0].clone()];
    }

    let mut out: Vec<PathPoint> = Vec::new();
    let mut reference = points[0].clone();
    let mut members: Vec<&PathPoint> = vec![&points[0]];

    let flush = |reference: &PathPoint, members: &[&PathPoint], out: &mut Vec<PathPoint>| {
        let rep = match centroid {
            CentroidMode::Reference => reference.clone(),
            CentroidMode::Mean => {
                let dims = reference.feat.len();
                let mut mean = vec![0.0; dims];
                for m in members {
                    for (s, v) in mean.iter_mut().zip(&m.feat) {
                        *s += v;
                    }
                }
                for s in &mut mean {
                    *s /= members.len() as f64;
                }
                let ts = members[members.len() / 2].ts;
                PathPoint::new(ts, mean)
            }
        };
        out.push(rep);
    };

    for p in &points[1..] {
        let d = metric.distance(&reference.feat, &p.feat);
        if d > max_dist {
            flush(&reference, &members, &mut out);
            reference = p.clone();
            members = vec![p];
        } else {
            members.push(p);
        }
    }
    flush(&reference, &members, &mut out);

    // Anchor the end pose: the gesture's final position matters even if
    // it never strayed max_dist from the last reference.
    let last_in = points.last().expect("non-empty");
    let last_out = out.last().expect("flushed at least once");
    if metric.distance(&last_out.feat, &last_in.feat) > max_dist * 0.5 {
        out.push(last_in.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ts: i64, x: f64) -> PathPoint {
        PathPoint::new(ts, vec![x, 0.0, 0.0])
    }

    fn line(n: usize, step: f64) -> Vec<PathPoint> {
        (0..n).map(|i| p(i as i64 * 33, i as f64 * step)).collect()
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(sample_path(&[], Strategy::default()).is_empty());
    }

    #[test]
    fn still_path_yields_single_pose() {
        let pts: Vec<PathPoint> = (0..30).map(|i| p(i * 33, 5.0)).collect();
        let out = sample_path(&pts, Strategy::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].feat[0], 5.0);
    }

    #[test]
    fn first_point_is_first_output() {
        let pts = line(30, 10.0);
        let out = sample_path(&pts, Strategy::default());
        assert_eq!(out[0], pts[0]);
    }

    #[test]
    fn relative_threshold_controls_pose_count() {
        // 30 points over 290mm; fraction 0.25 -> max_dist 72.5 -> poses at
        // 0, 80, 160, 240 + end anchor.
        let pts = line(30, 10.0);
        let strat = |f: f64| Strategy::DistanceBased {
            metric: Metric::Euclidean,
            threshold: Threshold::RelativePathFraction(f),
            centroid: CentroidMode::Reference,
        };
        let coarse = sample_path(&pts, strat(0.5)).len();
        let medium = sample_path(&pts, strat(0.25)).len();
        let fine = sample_path(&pts, strat(0.1)).len();
        assert!(
            coarse <= medium && medium <= fine,
            "{coarse} {medium} {fine}"
        );
        assert!(coarse >= 2, "at least start+end");
        assert!(fine <= pts.len());
    }

    #[test]
    fn monotone_in_threshold() {
        let pts = line(60, 7.0);
        let mut last = usize::MAX;
        for f in [0.05, 0.1, 0.2, 0.3, 0.5, 0.9] {
            let n = sample_path(
                &pts,
                Strategy::DistanceBased {
                    metric: Metric::Euclidean,
                    threshold: Threshold::RelativePathFraction(f),
                    centroid: CentroidMode::Reference,
                },
            )
            .len();
            assert!(n <= last, "fraction {f}: {n} > {last}");
            last = n;
        }
    }

    #[test]
    fn end_pose_is_anchored() {
        let pts = line(30, 10.0);
        let out = sample_path(&pts, Strategy::default());
        let last_out = out.last().unwrap();
        let last_in = pts.last().unwrap();
        let d = Metric::Euclidean.distance(&last_out.feat, &last_in.feat);
        let total = path_length(&pts, Metric::Euclidean);
        assert!(d <= 0.25 * total * 0.5 + 1e-9, "end pose close to path end");
    }

    #[test]
    fn outputs_in_path_order() {
        let pts = line(50, 13.0);
        let out = sample_path(&pts, Strategy::default());
        for w in out.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn absolute_threshold() {
        let pts = line(30, 10.0); // 10mm per step
        let out = sample_path(
            &pts,
            Strategy::DistanceBased {
                metric: Metric::Euclidean,
                threshold: Threshold::Absolute(95.0),
                centroid: CentroidMode::Reference,
            },
        );
        // References at x = 0, 100, 200 (+ end anchor at 290).
        let xs: Vec<f64> = out.iter().map(|p| p.feat[0]).collect();
        assert_eq!(xs, vec![0.0, 100.0, 200.0, 290.0]);
    }

    #[test]
    fn mean_centroid_averages_members() {
        let pts = line(11, 10.0); // 0..100, total 100
        let out = sample_path(
            &pts,
            Strategy::DistanceBased {
                metric: Metric::Euclidean,
                threshold: Threshold::Absolute(1000.0), // one cluster
                centroid: CentroidMode::Mean,
            },
        );
        assert_eq!(out.len(), 1, "everything within max_dist");
        assert!((out[0].feat[0] - 50.0).abs() < 1e-9, "mean of 0..100");
    }

    #[test]
    fn every_n_includes_last() {
        let pts = line(10, 1.0);
        let out = sample_path(&pts, Strategy::EveryN(4));
        let ts: Vec<i64> = out.iter().map(|p| p.ts).collect();
        assert_eq!(ts, vec![0, 132, 264, 297]);
    }

    #[test]
    fn time_delta_strategy() {
        let pts = line(30, 1.0); // 33ms apart
        let out = sample_path(&pts, Strategy::TimeDelta(100));
        for w in out.windows(2) {
            assert!(w[1].ts - w[0].ts >= 99 || w[1].ts == pts.last().unwrap().ts);
        }
        assert!(out.len() >= 9);
    }

    #[test]
    fn path_length_computation() {
        let pts = line(11, 10.0);
        assert!((path_length(&pts, Metric::Euclidean) - 100.0).abs() < 1e-9);
        assert_eq!(path_length(&pts[..1], Metric::Euclidean), 0.0);
    }
}

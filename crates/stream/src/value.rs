//! Scalar values flowing through the stream engine.
//!
//! The engine is dynamically typed at the tuple level: every field slot
//! holds a [`Value`] and every stream carries a [`crate::Schema`] describing
//! the declared [`ValueType`] of each slot. Operators validate against the
//! schema once at wiring time and can then rely on the declared types.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Declared type of a tuple field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Millisecond timestamp (monotone stream time).
    Timestamp,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
            ValueType::Bool => "bool",
            ValueType::Timestamp => "timestamp",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar value.
///
/// `Null` is used for missing sensor readings (e.g. a joint the tracker
/// lost); predicates evaluating over `Null` yield `Null` and a pattern
/// never matches on it (three-valued logic, as in SQL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Missing value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Millisecond timestamp.
    Timestamp(i64),
}

impl Value {
    /// The runtime type of this value, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Timestamp(_) => Some(ValueType::Timestamp),
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value is acceptable in a slot declared as `ty`.
    ///
    /// `Null` is acceptable everywhere; `Int` widens into `Float` slots.
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), ValueType::Int | ValueType::Float)
                | (Value::Float(_), ValueType::Float)
                | (Value::Str(_), ValueType::Str)
                | (Value::Bool(_), ValueType::Bool)
                | (Value::Timestamp(_), ValueType::Timestamp)
        )
    }

    /// Numeric view: `Int`, `Float` and `Timestamp` as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Integer view: `Int` and `Timestamp` as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Three-valued comparison used by range predicates.
    ///
    /// Numeric types compare across `Int`/`Float`/`Timestamp`; comparing a
    /// `Null` or incompatible types yields `None` (unknown).
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL-style equality: `Null` compares as unknown (`None`).
    pub fn eq_value(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a == b),
            (Value::Bool(a), Value::Bool(b)) => Some(a == b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Some(a == b),
                _ => Some(false),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_values() {
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
        assert_eq!(Value::Float(1.0).value_type(), Some(ValueType::Float));
        assert_eq!(Value::Str("x".into()).value_type(), Some(ValueType::Str));
        assert_eq!(Value::Bool(true).value_type(), Some(ValueType::Bool));
        assert_eq!(Value::Timestamp(9).value_type(), Some(ValueType::Timestamp));
        assert_eq!(Value::Null.value_type(), None);
    }

    #[test]
    fn null_conforms_everywhere() {
        for ty in [
            ValueType::Int,
            ValueType::Float,
            ValueType::Str,
            ValueType::Bool,
            ValueType::Timestamp,
        ] {
            assert!(Value::Null.conforms_to(ty));
        }
    }

    #[test]
    fn int_widens_to_float() {
        assert!(Value::Int(3).conforms_to(ValueType::Float));
        assert!(!Value::Float(3.0).conforms_to(ValueType::Int));
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Int(2).partial_cmp_value(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(2.0).partial_cmp_value(&Value::Int(2)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Null.partial_cmp_value(&Value::Int(2)), None);
        assert_eq!(
            Value::Str("a".into()).partial_cmp_value(&Value::Int(2)),
            None
        );
    }

    #[test]
    fn eq_value_three_valued() {
        assert_eq!(Value::Int(1).eq_value(&Value::Float(1.0)), Some(true));
        assert_eq!(Value::Null.eq_value(&Value::Int(1)), None);
        assert_eq!(
            Value::Str("a".into()).eq_value(&Value::Str("b".into())),
            Some(false)
        );
        assert_eq!(Value::Bool(true).eq_value(&Value::Int(1)), Some(false));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Timestamp(33).to_string(), "@33");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }

    #[test]
    fn as_views() {
        assert_eq!(Value::Timestamp(7).as_f64(), Some(7.0));
        assert_eq!(Value::Timestamp(7).as_i64(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Int(1).as_bool(), None);
    }
}

//! The gesture store: samples, definitions and generated queries.
//!
//! §3 of the paper: "the sample data is stored in a database for further
//! processing and manual debugging" and "all gesture patterns are stored
//! in a database for an optional post-processing step". This module is
//! that database — an in-memory store with JSON persistence.

use std::collections::BTreeMap;
use std::path::Path;

use gesto_learn::{GestureDefinition, GestureSample};
use parking_lot::RwLock;
use serde::{Content, DeError, Deserialize, Serialize};

use crate::error::DbError;

/// Everything stored about one gesture.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GestureRecord {
    /// Recorded training samples (transformed feature paths).
    pub samples: Vec<GestureSample>,
    /// The learned definition, once finalised.
    pub definition: Option<GestureDefinition>,
    /// The generated query text, once generated.
    pub query_text: Option<String>,
}

/// Serialisable snapshot of the whole store.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreSnapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    /// CRC-32 over the canonical JSON of `gestures` — bit rot in a
    /// persisted snapshot is caught at [`GestureStore::restore`] instead
    /// of silently loading a mangled gesture. Version-1 snapshots
    /// predate the checksum; they deserialise with `crc == 0` and skip
    /// the check.
    pub crc: u32,
    /// Gestures by name.
    pub gestures: BTreeMap<String, GestureRecord>,
}

// Hand-written (not derived) so version-1 snapshots — which have no
// `crc` key — keep loading: the vendored serde shim treats every missing
// struct field as an error.
impl Serialize for StoreSnapshot {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("version".to_owned(), self.version.to_content()),
            ("crc".to_owned(), self.crc.to_content()),
            ("gestures".to_owned(), self.gestures.to_content()),
        ])
    }
}

impl Deserialize for StoreSnapshot {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let version = match content.get("version") {
            Some(c) => u32::from_content(c)?,
            None => return Err(DeError::new("missing field `version`")),
        };
        let crc = match content.get("crc") {
            Some(c) => u32::from_content(c)?,
            None => 0,
        };
        let gestures = match content.get("gestures") {
            Some(c) => BTreeMap::from_content(c)?,
            None => return Err(DeError::new("missing field `gestures`")),
        };
        Ok(StoreSnapshot {
            version,
            crc,
            gestures,
        })
    }
}

/// Current snapshot format version. Version 2 added the payload CRC;
/// version-1 snapshots still load (without the integrity check).
pub const SNAPSHOT_VERSION: u32 = 2;

/// CRC-32 over the canonical JSON of a gesture map. `BTreeMap` ordering
/// makes the serialisation deterministic, so the checksum is stable
/// across processes.
pub fn snapshot_crc(gestures: &BTreeMap<String, GestureRecord>) -> u32 {
    let json = serde_json::to_string(gestures)
        .expect("in-memory serialisation of the gesture map cannot fail");
    gesto_durability::crc32(json.as_bytes())
}

/// Thread-safe gesture database.
#[derive(Default)]
pub struct GestureStore {
    inner: RwLock<BTreeMap<String, GestureRecord>>,
}

impl GestureStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a training sample for `name` (creates the record if needed).
    /// Returns the new sample count.
    pub fn add_sample(&self, name: &str, sample: GestureSample) -> usize {
        let mut inner = self.inner.write();
        let rec = inner.entry(name.to_owned()).or_default();
        rec.samples.push(sample);
        rec.samples.len()
    }

    /// Stores (or replaces) the learned definition of `name`.
    pub fn put_definition(&self, def: GestureDefinition) -> Result<(), DbError> {
        def.validate().map_err(DbError::InvalidDefinition)?;
        let mut inner = self.inner.write();
        let rec = inner.entry(def.name.clone()).or_default();
        rec.definition = Some(def);
        Ok(())
    }

    /// Inserts (or replaces) the full record of `name` — the journal-
    /// replay entry point: a recovered control-plane op carries the
    /// whole record. Validates the definition (if any) first.
    pub fn put_record(&self, name: &str, record: GestureRecord) -> Result<(), DbError> {
        if let Some(def) = &record.definition {
            def.validate()
                .map_err(|e| DbError::InvalidDefinition(format!("gesture '{name}': {e}")))?;
        }
        self.inner.write().insert(name.to_owned(), record);
        Ok(())
    }

    /// Stores the generated query text of `name`.
    pub fn put_query_text(&self, name: &str, text: impl Into<String>) {
        let mut inner = self.inner.write();
        let rec = inner.entry(name.to_owned()).or_default();
        rec.query_text = Some(text.into());
    }

    /// Full record of a gesture.
    pub fn get(&self, name: &str) -> Option<GestureRecord> {
        self.inner.read().get(name).cloned()
    }

    /// The learned definition of a gesture.
    pub fn definition(&self, name: &str) -> Option<GestureDefinition> {
        self.inner
            .read()
            .get(name)
            .and_then(|r| r.definition.clone())
    }

    /// All stored definitions (for cross-checks).
    pub fn definitions(&self) -> Vec<GestureDefinition> {
        self.inner
            .read()
            .values()
            .filter_map(|r| r.definition.clone())
            .collect()
    }

    /// Sorted gesture names.
    pub fn names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Number of stored gestures.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Removes a gesture entirely; returns its record.
    pub fn remove(&self, name: &str) -> Option<GestureRecord> {
        self.inner.write().remove(name)
    }

    /// Drops the recorded samples of `name` (e.g. after re-recording).
    pub fn clear_samples(&self, name: &str) -> usize {
        let mut inner = self.inner.write();
        match inner.get_mut(name) {
            Some(rec) => std::mem::take(&mut rec.samples).len(),
            None => 0,
        }
    }

    /// Snapshot for persistence (carries a CRC over the payload).
    pub fn snapshot(&self) -> StoreSnapshot {
        let gestures = self.inner.read().clone();
        StoreSnapshot {
            version: SNAPSHOT_VERSION,
            crc: snapshot_crc(&gestures),
            gestures,
        }
    }

    /// Restores from a snapshot (replaces current contents).
    ///
    /// Everything is validated **before** the write lock is taken — the
    /// store is never left holding a half-checked snapshot: the version
    /// must be supported, the CRC must match (version ≥ 2), and every
    /// definition must validate.
    pub fn restore(&self, snapshot: StoreSnapshot) -> Result<(), DbError> {
        if snapshot.version == 0 || snapshot.version > SNAPSHOT_VERSION {
            return Err(DbError::Version {
                found: snapshot.version,
                supported: SNAPSHOT_VERSION,
            });
        }
        if snapshot.version >= 2 {
            let computed = snapshot_crc(&snapshot.gestures);
            if computed != snapshot.crc {
                return Err(DbError::Corrupt {
                    stored: snapshot.crc,
                    computed,
                });
            }
        }
        for (name, rec) in &snapshot.gestures {
            if let Some(def) = &rec.definition {
                def.validate()
                    .map_err(|e| DbError::InvalidDefinition(format!("gesture '{name}': {e}")))?;
            }
        }
        *self.inner.write() = snapshot.gestures;
        Ok(())
    }

    /// Saves the store as pretty JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DbError> {
        let json = serde_json::to_string_pretty(&self.snapshot())?;
        std::fs::write(path.as_ref(), json).map_err(|e| DbError::Io(e.to_string()))?;
        Ok(())
    }

    /// Loads a store from JSON.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DbError> {
        let json =
            std::fs::read_to_string(path.as_ref()).map_err(|e| DbError::Io(e.to_string()))?;
        let snapshot: StoreSnapshot = serde_json::from_str(&json)?;
        let store = Self::new();
        store.restore(snapshot)?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesto_learn::{JointSet, PathPoint, PoseWindow};

    fn def(name: &str) -> GestureDefinition {
        GestureDefinition {
            name: name.into(),
            joints: JointSet::right_hand(),
            poses: vec![
                PoseWindow::new(vec![0.0; 3], vec![50.0; 3]),
                PoseWindow::new(vec![400.0, 0.0, 0.0], vec![50.0; 3]),
            ],
            within_ms: vec![1000],
            active_dims: vec![true; 3],
            sample_count: 2,
        }
    }

    fn sample() -> GestureSample {
        GestureSample {
            points: vec![
                PathPoint::new(0, vec![0.0, 0.0, 0.0]),
                PathPoint::new(33, vec![10.0, 0.0, 0.0]),
            ],
        }
    }

    #[test]
    fn add_samples_and_definitions() {
        let store = GestureStore::new();
        assert!(store.is_empty());
        assert_eq!(store.add_sample("swipe", sample()), 1);
        assert_eq!(store.add_sample("swipe", sample()), 2);
        store.put_definition(def("swipe")).unwrap();
        store.put_query_text("swipe", "SELECT ...");
        let rec = store.get("swipe").unwrap();
        assert_eq!(rec.samples.len(), 2);
        assert!(rec.definition.is_some());
        assert_eq!(rec.query_text.as_deref(), Some("SELECT ..."));
        assert_eq!(store.names(), vec!["swipe"]);
    }

    #[test]
    fn invalid_definition_rejected() {
        let store = GestureStore::new();
        let mut bad = def("x");
        bad.within_ms.clear();
        assert!(matches!(
            store.put_definition(bad),
            Err(DbError::InvalidDefinition(_))
        ));
        assert!(store.definition("x").is_none());
    }

    #[test]
    fn remove_and_clear() {
        let store = GestureStore::new();
        store.add_sample("a", sample());
        store.add_sample("a", sample());
        assert_eq!(store.clear_samples("a"), 2);
        assert_eq!(store.get("a").unwrap().samples.len(), 0);
        assert!(store.remove("a").is_some());
        assert!(store.get("a").is_none());
        assert_eq!(store.clear_samples("missing"), 0);
    }

    #[test]
    fn snapshot_roundtrip_in_memory() {
        let store = GestureStore::new();
        store.add_sample("a", sample());
        store.put_definition(def("a")).unwrap();
        let snap = store.snapshot();
        let store2 = GestureStore::new();
        store2.restore(snap).unwrap();
        assert_eq!(store2.definition("a"), Some(def("a")));
        assert_eq!(store2.get("a").unwrap().samples.len(), 1);
    }

    #[test]
    fn version_mismatch_rejected() {
        let store = GestureStore::new();
        let snap = StoreSnapshot {
            version: 99,
            crc: 0,
            gestures: BTreeMap::new(),
        };
        assert!(matches!(
            store.restore(snap),
            Err(DbError::Version { found: 99, .. })
        ));
    }

    #[test]
    fn v1_snapshot_without_crc_still_loads() {
        // A version-1 snapshot (written before the checksum existed) has
        // no `crc` key at all; it must keep loading.
        let store = GestureStore::new();
        store.add_sample("a", sample());
        store.put_definition(def("a")).unwrap();
        let gestures_json = serde_json::to_string(&store.snapshot().gestures).unwrap();
        let v1 = format!("{{\"version\":1,\"gestures\":{gestures_json}}}");
        let snap: StoreSnapshot = serde_json::from_str(&v1).unwrap();
        assert_eq!(snap.version, 1);
        assert_eq!(snap.crc, 0);
        let store2 = GestureStore::new();
        store2.restore(snap).unwrap();
        assert_eq!(store2.definition("a"), Some(def("a")));
    }

    #[test]
    fn crc_mismatch_rejected() {
        let store = GestureStore::new();
        store.add_sample("a", sample());
        let mut snap = store.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_ne!(snap.crc, 0);
        // Mutate the payload after the checksum was taken.
        snap.gestures
            .insert("ghost".into(), GestureRecord::default());
        let store2 = GestureStore::new();
        assert!(matches!(store2.restore(snap), Err(DbError::Corrupt { .. })));
    }

    #[test]
    fn put_record_validates_and_inserts() {
        let store = GestureStore::new();
        let rec = GestureRecord {
            samples: vec![sample()],
            definition: Some(def("w")),
            query_text: Some("Q".into()),
        };
        store.put_record("w", rec.clone()).unwrap();
        assert_eq!(store.get("w"), Some(rec));

        let mut bad = def("b");
        bad.within_ms.clear();
        let rec = GestureRecord {
            samples: vec![],
            definition: Some(bad),
            query_text: None,
        };
        assert!(matches!(
            store.put_record("b", rec),
            Err(DbError::InvalidDefinition(_))
        ));
        assert!(store.get("b").is_none());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("gesto-db-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.json");
        let store = GestureStore::new();
        store.add_sample("swipe", sample());
        store.put_definition(def("swipe")).unwrap();
        store.put_query_text("swipe", "Q");
        store.save(&path).unwrap();

        let loaded = GestureStore::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.definition("swipe"), Some(def("swipe")));
        assert_eq!(
            loaded.get("swipe").unwrap().query_text.as_deref(),
            Some("Q")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            GestureStore::load("/nonexistent/gesto.json"),
            Err(DbError::Io(_))
        ));
    }

    #[test]
    fn load_corrupt_json_errors() {
        let dir = std::env::temp_dir().join(format!("gesto-db-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(GestureStore::load(&path), Err(DbError::Serde(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! # gesto-learn — learning event patterns for gesture detection
//!
//! The primary contribution of *Beier, Alaqraa, Lai, Sattler: "Learning
//! Event Patterns for Gesture Detection"* (EDBT 2014), reproduced in
//! Rust: a pipeline that turns a handful of recorded gesture samples into
//! declarative CEP detection queries.
//!
//! Pipeline (paper §3.3):
//!
//! 1. [`sampling`] — distance-based sampling compresses each 30 Hz sample
//!    path into characteristic points (§3.3.1);
//! 2. [`merging`] — per-sequence-number minimal bounding rectangles merge
//!    samples incrementally, with outlier warnings (§3.3.2);
//! 3. generalisation — width scaling and flooring ([`Learner::finalize`]);
//! 4. [`validate`] — overlap cross-checks, window merging, coordinate
//!    elimination (§3.3.3);
//! 5. [`query_gen`] — range-predicate / nested-sequence query generation
//!    (§3.3.4).
//!
//! ```
//! use gesto_learn::{Learner, query_gen::{generate_query_text, QueryStyle}};
//! use gesto_kinect::{gestures, Performer, Persona};
//! use gesto_transform::{TransformConfig, Transformer};
//!
//! let mut learner = Learner::with_defaults();
//! for seed in 0..3 {
//!     let mut perf = Performer::new(Persona::reference().with_seed(seed), 0);
//!     let frames = perf.render(&gestures::swipe_right());
//!     let mut tr = Transformer::new(TransformConfig::default());
//!     let transformed: Vec<_> = frames.iter().filter_map(|f| tr.transform_frame(f)).collect();
//!     learner.add_sample_frames(&transformed).unwrap();
//! }
//! let def = learner.finalize("swipe_right").unwrap();
//! let query = generate_query_text(&def, QueryStyle::TransformedView);
//! assert!(query.contains("SELECT \"swipe_right\""));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod learner;
pub mod merging;
pub mod metric;
mod model;
pub mod query_gen;
pub mod sampling;
pub mod validate;
pub mod viz;
mod window;

pub use config::{LearnerConfig, WithinPolicy};
pub use learner::{LearnError, Learner};
pub use merging::{MergeConfig, MergeState, MergeWarning};
pub use metric::{Metric, Threshold};
pub use model::{GestureDefinition, GestureSample, JointSet, PathPoint};
pub use window::PoseWindow;

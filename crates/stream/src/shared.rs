//! Transform-once shared view evaluation.
//!
//! The classic engine instantiates one view-operator chain per deployed
//! query route, so a stream with N queries over the `kinect_t` view runs
//! the coordinate transformation N times per frame. [`SharedViews`] is
//! the per-session antidote: it instantiates every registered view
//! exactly once, evaluates each *needed* view exactly once per frame in
//! dependency order, and hands the output tuples out by reference so any
//! number of query routes share them.
//!
//! A `SharedViews` is per-session state (view operators may be stateful,
//! e.g. the transformer's smoothed scale estimate); the slot numbering is
//! deterministic for a given catalog, and append-only under
//! [`SharedViews::refresh`], so slot indices cached by consumers stay
//! valid across catalog growth.
//!
//! View state is **stream-scoped**: an operator lives as long as the
//! session, persisting across query deploy/undeploy (a query deployed
//! mid-stream reads the already-warmed view). This deliberately differs
//! from the per-route model, where every deployed route restarted its
//! own operator copy cold. A view nobody needs is not fed at all; if a
//! later deploy needs it again, it resumes from its last evaluated
//! frame's state.

use std::collections::HashMap;

use crate::catalog::Catalog;
use crate::operator::BoxedOperator;
use crate::tuple::Tuple;

/// Where a view reads its input tuples from.
enum Input {
    /// A base stream, matched against the pushed stream name.
    Stream(String),
    /// Another view, by slot (always a lower slot: dependency order).
    View(usize),
}

/// One instantiated view and its per-batch output buffer.
struct ViewState {
    name: String,
    input: Input,
    op: BoxedOperator,
    /// Output tuples of the current batch, all frames concatenated in
    /// order (buffer reused across batches).
    out: Vec<Tuple>,
    /// Frame boundaries into `out`: frame `f`'s outputs are
    /// `out[offsets[f] .. offsets[f+1]]`. Empty when the view did not
    /// run this batch.
    offsets: Vec<u32>,
    /// True when the view ran this batch (its input chain was rooted at
    /// the pushed stream), even if it emitted nothing.
    live: bool,
    /// True when some consumer references this view (directly or as the
    /// input of a needed view); others are skipped entirely.
    needed: bool,
}

/// Per-session, evaluate-once runtime over a catalog's views.
pub struct SharedViews {
    /// Views in dependency order: a view's input slot is always lower
    /// than its own.
    states: Vec<ViewState>,
    slots: HashMap<String, usize>,
}

impl SharedViews {
    /// Instantiates one operator per view registered in `catalog`.
    /// All views start out *not needed*; see [`Self::set_needed`].
    pub fn new(catalog: &Catalog) -> Self {
        let mut sv = Self {
            states: Vec::new(),
            slots: HashMap::new(),
        };
        sv.refresh(catalog);
        sv
    }

    /// Instantiates views registered in `catalog` since construction (the
    /// catalog is add-only, so this only ever appends slots — existing
    /// operators keep their state and existing slot indices stay valid).
    pub fn refresh(&mut self, catalog: &Catalog) {
        let mut pending: Vec<_> = catalog
            .view_defs()
            .into_iter()
            .filter(|v| !self.slots.contains_key(&v.name))
            .collect();
        // Deterministic slot numbering: sorted by name, then placed in
        // dependency order (an input must be a stream or an already
        // placed view; Catalog::register_view guarantees convergence).
        pending.sort_by(|a, b| a.name.cmp(&b.name));
        loop {
            let before = pending.len();
            pending.retain(|def| {
                let input = if let Some(&j) = self.slots.get(&def.input) {
                    Input::View(j)
                } else if catalog.is_stream(&def.input) {
                    Input::Stream(def.input.clone())
                } else {
                    return true; // input view not placed yet
                };
                self.slots.insert(def.name.clone(), self.states.len());
                self.states.push(ViewState {
                    name: def.name.clone(),
                    input,
                    op: (def.factory)(),
                    out: Vec::new(),
                    offsets: Vec::new(),
                    live: false,
                    needed: false,
                });
                false
            });
            if pending.is_empty() || pending.len() == before {
                break;
            }
        }
        debug_assert!(pending.is_empty(), "catalog views must be acyclic");
    }

    /// Number of instantiated views.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when no views are instantiated.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Slot of a view by name.
    pub fn slot_of(&self, name: &str) -> Option<usize> {
        self.slots.get(name).copied()
    }

    /// Marks exactly the given views — plus their transitive view inputs
    /// — as needed; every other view is skipped by [`Self::begin_frame`].
    /// Unknown names are ignored (the caller's plan then falls back to
    /// its own chains).
    pub fn set_needed<'a>(&mut self, names: impl IntoIterator<Item = &'a str>) {
        for s in &mut self.states {
            s.needed = false;
        }
        for n in names {
            if let Some(i) = self.slot_of(n) {
                self.mark_needed(i);
            }
        }
    }

    fn mark_needed(&mut self, i: usize) {
        if self.states[i].needed {
            return;
        }
        self.states[i].needed = true;
        if let Input::View(j) = self.states[i].input {
            self.mark_needed(j);
        }
    }

    /// True when the view in `slot` is currently marked needed.
    pub fn is_needed(&self, slot: usize) -> bool {
        self.states[slot].needed
    }

    /// Evaluates every needed view for one frame; equivalent to
    /// [`Self::begin_batch`] with a one-tuple batch.
    pub fn begin_frame(&mut self, stream: &str, tuple: &Tuple) {
        self.begin_batch(stream, std::slice::from_ref(tuple));
    }

    /// Evaluates every needed view whose chain is rooted at `stream`
    /// over a whole batch of frames, exactly once per view, in
    /// dependency order. Until the next `begin_batch`, a view's
    /// concatenated batch output is read with [`Self::outputs`] and one
    /// frame's slice of it with [`Self::frame_outputs`].
    ///
    /// Each view operator still sees the tuples in frame order, so the
    /// outputs are identical to `tuples.len()` successive
    /// [`Self::begin_frame`] calls — but downstream consumers (the NFA
    /// hot loop) get one contiguous slice per batch instead of one
    /// callback per frame.
    pub fn begin_batch(&mut self, stream: &str, tuples: &[Tuple]) {
        for i in 0..self.states.len() {
            let (done, rest) = self.states.split_at_mut(i);
            let st = &mut rest[0];
            st.out.clear();
            st.offsets.clear();
            st.live = false;
            if !st.needed {
                continue;
            }
            let out = &mut st.out;
            let offsets = &mut st.offsets;
            let op = &mut st.op;
            match &st.input {
                Input::Stream(s) => {
                    if s.as_str() != stream {
                        continue;
                    }
                    offsets.push(0);
                    for tuple in tuples {
                        op.process(tuple, &mut |t| out.push(t));
                        offsets.push(out.len() as u32);
                    }
                }
                Input::View(j) => {
                    let up = &done[*j];
                    if !up.live {
                        continue;
                    }
                    offsets.push(0);
                    for f in 0..tuples.len() {
                        let (a, b) = (up.offsets[f] as usize, up.offsets[f + 1] as usize);
                        for t in &up.out[a..b] {
                            op.process(t, &mut |t| out.push(t));
                        }
                        offsets.push(out.len() as u32);
                    }
                }
            }
            st.live = true;
        }
    }

    /// Output tuples of the view in `slot` for the current batch, all
    /// frames concatenated (empty when the view did not run or emitted
    /// nothing).
    pub fn outputs(&self, slot: usize) -> &[Tuple] {
        &self.states[slot].out
    }

    /// Output tuples of the view in `slot` for frame `frame` of the
    /// current batch (empty when the view did not run).
    pub fn frame_outputs(&self, slot: usize, frame: usize) -> &[Tuple] {
        let st = &self.states[slot];
        if !st.live {
            return &[];
        }
        &st.out[st.offsets[frame] as usize..st.offsets[frame + 1] as usize]
    }

    /// Names of the instantiated views, in slot order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.states.iter().map(|s| s.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use super::*;
    use crate::catalog::ViewDef;
    use crate::ops::MapOp;
    use crate::schema::{SchemaBuilder, SchemaRef};
    use crate::value::Value;

    fn base() -> SchemaRef {
        SchemaBuilder::new("kinect")
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap()
    }

    /// A view that multiplies `x` and counts its invocations.
    fn counted_view(name: &str, input: &str, factor: f64, counter: Arc<AtomicU64>) -> ViewDef {
        let schema = SchemaBuilder::new(name)
            .timestamp("ts")
            .float("x")
            .build()
            .unwrap();
        let out = schema.clone();
        ViewDef {
            name: name.into(),
            input: input.into(),
            schema: schema.clone(),
            factory: Arc::new(move || {
                let out = out.clone();
                let counter = counter.clone();
                Box::new(MapOp::new("mul", out.clone(), move |t: &Tuple| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    Some(Tuple::new_unchecked(
                        out.clone(),
                        vec![
                            t.get(0).unwrap().clone(),
                            Value::Float(t.f64("x").unwrap() * factor),
                        ],
                    ))
                }))
            }),
        }
    }

    fn tup(ts: i64, x: f64) -> Tuple {
        Tuple::new(base(), vec![Value::Timestamp(ts), Value::Float(x)]).unwrap()
    }

    #[test]
    fn evaluates_each_needed_view_once_per_frame() {
        let cat = Catalog::new();
        cat.register_stream(base()).unwrap();
        let calls = Arc::new(AtomicU64::new(0));
        cat.register_view(counted_view("v2", "kinect", 2.0, calls.clone()))
            .unwrap();

        let mut sv = SharedViews::new(&cat);
        let slot = sv.slot_of("v2").unwrap();
        sv.set_needed(["v2"]);
        sv.begin_frame("kinect", &tup(0, 3.0));
        assert_eq!(sv.outputs(slot)[0].f64("x"), Some(6.0));
        assert_eq!(calls.load(Ordering::Relaxed), 1, "one eval per frame");

        // Reading twice costs nothing; next frame re-evaluates once.
        assert_eq!(sv.outputs(slot).len(), 1);
        sv.begin_frame("kinect", &tup(1, 5.0));
        assert_eq!(sv.outputs(slot)[0].f64("x"), Some(10.0));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn chained_views_evaluate_in_dependency_order() {
        let cat = Catalog::new();
        cat.register_stream(base()).unwrap();
        let c1 = Arc::new(AtomicU64::new(0));
        let c2 = Arc::new(AtomicU64::new(0));
        cat.register_view(counted_view("v2", "kinect", 2.0, c1.clone()))
            .unwrap();
        cat.register_view(counted_view("v4", "v2", 2.0, c2.clone()))
            .unwrap();

        let mut sv = SharedViews::new(&cat);
        // Needing only the outer view pulls in its input transitively.
        sv.set_needed(["v4"]);
        assert!(sv.is_needed(sv.slot_of("v2").unwrap()));
        sv.begin_frame("kinect", &tup(0, 1.0));
        assert_eq!(sv.outputs(sv.slot_of("v4").unwrap())[0].f64("x"), Some(4.0));
        assert_eq!(c1.load(Ordering::Relaxed), 1);
        assert_eq!(c2.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unneeded_views_are_skipped() {
        let cat = Catalog::new();
        cat.register_stream(base()).unwrap();
        let calls = Arc::new(AtomicU64::new(0));
        cat.register_view(counted_view("v2", "kinect", 2.0, calls.clone()))
            .unwrap();
        let mut sv = SharedViews::new(&cat);
        sv.begin_frame("kinect", &tup(0, 1.0));
        assert_eq!(calls.load(Ordering::Relaxed), 0, "not needed, not run");
        assert!(sv.outputs(sv.slot_of("v2").unwrap()).is_empty());
    }

    #[test]
    fn other_stream_does_not_feed_views() {
        let cat = Catalog::new();
        cat.register_stream(base()).unwrap();
        cat.register_stream(
            SchemaBuilder::new("other")
                .timestamp("ts")
                .float("x")
                .build()
                .unwrap(),
        )
        .unwrap();
        let calls = Arc::new(AtomicU64::new(0));
        cat.register_view(counted_view("v2", "kinect", 2.0, calls.clone()))
            .unwrap();
        let mut sv = SharedViews::new(&cat);
        sv.set_needed(["v2"]);
        sv.begin_frame("other", &tup(0, 1.0));
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        assert!(sv.outputs(sv.slot_of("v2").unwrap()).is_empty());
    }

    #[test]
    fn refresh_appends_and_keeps_slots_stable() {
        let cat = Catalog::new();
        cat.register_stream(base()).unwrap();
        let c = Arc::new(AtomicU64::new(0));
        cat.register_view(counted_view("v2", "kinect", 2.0, c.clone()))
            .unwrap();
        let mut sv = SharedViews::new(&cat);
        let v2 = sv.slot_of("v2").unwrap();

        cat.register_view(counted_view("v4", "v2", 2.0, c.clone()))
            .unwrap();
        sv.refresh(&cat);
        assert_eq!(sv.slot_of("v2"), Some(v2), "existing slot unchanged");
        assert_eq!(sv.len(), 2);
        sv.set_needed(["v4"]);
        sv.begin_frame("kinect", &tup(0, 1.0));
        assert_eq!(sv.outputs(sv.slot_of("v4").unwrap())[0].f64("x"), Some(4.0));
    }
}

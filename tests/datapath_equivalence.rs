//! Equivalence of the transform-once data path with the seed's
//! per-route path.
//!
//! The refactored spine (shared view evaluation + slot-compiled
//! `kinect_t` + `Engine::push_batch` + shared-path shard workers) must
//! produce **bit-identical detections** to the seed semantics, where
//! every deployed query route ran its own private `Transformer` chain.
//! The legacy semantics are still reachable through
//! [`PlanInstance::push`], which this test uses as the reference.
//!
//! The check sweeps randomised scenarios: different gesture sets (learned
//! transformed-view queries, raw-stream queries, hand-written sequences),
//! personas (height, position, rotation, sensor noise) and session
//! counts, through both the engine and the sharded server.

use std::collections::HashMap;
use std::sync::Arc;

use gesto::cep::{parse_query, Detection, Engine, PlanInstance, QueryPlan};
use gesto::kinect::{
    frames_to_tuples, gestures, kinect_schema, GestureSpec, NoiseModel, Performer, Persona,
    SkeletonFrame, KINECT_STREAM,
};
use gesto::learn::query_gen::{generate_query, QueryStyle};
use gesto::learn::{Learner, LearnerConfig};
use gesto::serve::{BackpressurePolicy, Server, ServerConfig, SessionId};
use gesto::stream::Tuple;
use gesto::transform::{register_rpy, standard_catalog, TransformConfig, Transformer};
use parking_lot::Mutex;

/// Learns a gesture definition from 3 noisy samples (the bench helper,
/// inlined: gesto-bench is not a dependency of the facade).
fn learn(spec: &GestureSpec, seed_base: u64) -> gesto::learn::GestureDefinition {
    let persona = Persona::reference().with_noise(NoiseModel::realistic());
    let mut learner = Learner::new(LearnerConfig::default());
    for i in 0..3u64 {
        let mut p = Performer::new(persona.clone().with_seed(seed_base + i), 0);
        let frames = p.render(spec);
        let mut tr = Transformer::new(TransformConfig::default());
        let transformed: Vec<SkeletonFrame> = frames
            .iter()
            .filter_map(|f| tr.transform_frame(f))
            .collect();
        learner.add_sample_frames(&transformed).expect("sample");
    }
    learner.finalize(&spec.name).expect("finalizable")
}

/// The pool of queries scenarios draw from: learned queries over the
/// transformed view and the raw stream, plus hand-written patterns over
/// both sources.
fn query_pool() -> Vec<gesto::cep::Query> {
    let swipe = learn(&gestures::swipe_right(), 0);
    let circle = learn(&gestures::circle(), 100);
    let mut queries = vec![
        generate_query(&swipe, QueryStyle::TransformedView),
        generate_query(&circle, QueryStyle::TransformedView),
        generate_query(&swipe, QueryStyle::RawTorsoRelative),
        parse_query(
            r#"SELECT "hand_high_t"
               MATCHING kinect_t(rHand_y > 100) -> kinect_t(rHand_y < 0)
               within 2 seconds select first consume all;"#,
        )
        .unwrap(),
        parse_query(
            r#"SELECT "raw_sweep"
               MATCHING kinect(rHand_x - torso_x < -50) -> kinect(rHand_x - torso_x > 300)
               within 2 seconds;"#,
        )
        .unwrap(),
    ];
    // Learned queries share the definition name; disambiguate the raw
    // variant so sets can contain both.
    queries[2].name = "swipe_right_raw".into();
    queries
}

/// One scenario's frame workload: a few performances by a randomised
/// persona, including non-gesture idle movement (the circle performance
/// doubles as noise for the swipe queries and vice versa).
fn workload(seed: u64) -> Vec<SkeletonFrame> {
    let heights = [1250.0, 1500.0, 1741.0, 1950.0];
    let persona = Persona::reference()
        .with_height(heights[(seed % 4) as usize])
        .at(
            -600.0 + 300.0 * (seed % 5) as f64,
            2000.0 + 150.0 * (seed % 3) as f64,
        )
        .rotated(-0.9 + 0.45 * (seed % 5) as f64)
        .with_noise(if seed.is_multiple_of(2) {
            NoiseModel::realistic()
        } else {
            NoiseModel::sensor_only()
        })
        .with_seed(seed);
    let mut p = Performer::new(persona, 0);
    let mut frames = p.render_padded(&gestures::swipe_right(), 100, 300);
    frames.extend(p.render_padded(&gestures::circle(), 150, 250));
    frames.extend(p.render_padded(&gestures::swipe_right(), 50, 200));
    frames
}

/// Reference semantics: the seed's per-route path. Every plan instance
/// runs its own private view chains (one `Transformer` per route).
fn reference_detections(plans: &[Arc<QueryPlan>], tuples: &[Tuple]) -> Vec<Detection> {
    let mut instances: Vec<PlanInstance> = plans.iter().map(|p| p.instantiate()).collect();
    let mut out = Vec::new();
    for t in tuples {
        for inst in &mut instances {
            inst.push(KINECT_STREAM, t, &mut out).expect("legacy push");
        }
    }
    out
}

/// One detection's full-fidelity comparison key: (gesture, ts,
/// started_at, event value strings).
type CanonicalDetection = (String, i64, i64, Vec<String>);

/// Canonical sort + full-fidelity comparison key. Events are kept as
/// value strings so a mismatch prints something readable.
fn canonical(mut ds: Vec<Detection>) -> Vec<CanonicalDetection> {
    ds.sort_by(|a, b| (&a.gesture, a.ts, a.started_at).cmp(&(&b.gesture, b.ts, b.started_at)));
    ds.into_iter()
        .map(|d| {
            let events = d
                .events
                .iter()
                .map(|t| format!("{}:{:?}", t.schema().name, t.values()))
                .collect();
            (d.gesture, d.ts, d.started_at, events)
        })
        .collect()
}

/// Tiny deterministic PRNG (xorshift64*) so the property sweep needs no
/// external crate.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x2545F4914F6CDD1D) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A random pattern in the learned-gesture dialect: 1–4 band steps,
/// optional (possibly nested) `within` constraints, random
/// select/consume policies.
fn random_pattern(rng: &mut Rng) -> String {
    let steps = 1 + rng.below(4) as usize;
    let step = |rng: &mut Rng| {
        let c = rng.below(100) as f64;
        let w = 5.0 + rng.below(30) as f64;
        format!("k(abs(x - {c}) < {w})")
    };
    if steps == 1 {
        return step(rng);
    }
    let mut body = if steps >= 3 && rng.below(2) == 0 {
        // Nested inner sequence with its own budget.
        let within = 1 + rng.below(2);
        let mut s = format!("({} -> {} within {within} seconds)", step(rng), step(rng));
        for _ in 2..steps {
            s.push_str(&format!(" -> {}", step(rng)));
        }
        s
    } else {
        let mut s = step(rng);
        for _ in 1..steps {
            s.push_str(&format!(" -> {}", step(rng)));
        }
        s
    };
    if rng.below(2) == 0 {
        body.push_str(&format!(" within {} seconds", 1 + rng.below(2)));
    }
    let select = ["first", "last", "all"][rng.below(3) as usize];
    let consume = ["all", "none"][rng.below(2) as usize];
    format!("{body} select {select} consume {consume}")
}

#[test]
fn batched_nfa_advance_matches_single_tuple_advance() {
    use gesto::cep::{parse_pattern, FunctionRegistry, MatchScratch, Nfa, SingleSchema};
    use gesto::stream::{SchemaBuilder, Value};

    let schema = SchemaBuilder::new("k")
        .timestamp("ts")
        .float("x")
        .build()
        .unwrap();
    let tup = |ts: i64, x: f64| {
        Tuple::new(schema.clone(), vec![Value::Timestamp(ts), Value::Float(x)]).unwrap()
    };
    let canonical_match = |ts: i64, started_at: i64, events: &[Tuple]| {
        let ev: Vec<String> = events.iter().map(|t| format!("{:?}", t.values())).collect();
        (ts, started_at, ev)
    };

    let mut produced = 0usize;
    let mut shed_hit = false;
    let mut expiry_hit = false;
    for seed in 0..40u64 {
        let mut rng = Rng::new(seed + 1);
        // A random gesture set: every pattern steps the same stream.
        for _ in 0..(1 + rng.below(3)) {
            let text = random_pattern(&mut rng);
            let pattern = parse_pattern(&text).expect("generated pattern parses");
            let funcs = FunctionRegistry::with_builtins();
            let max_runs = [1usize, 2, 4, 1024][rng.below(4) as usize];
            let mut single = Nfa::compile(&pattern, &SingleSchema(schema.clone()), &funcs)
                .unwrap()
                .with_max_runs(max_runs);
            let mut batched = Nfa::compile(&pattern, &SingleSchema(schema.clone()), &funcs)
                .unwrap()
                .with_max_runs(max_runs);

            // Random workload: mostly increasing timestamps with gaps
            // long enough to expire `within` budgets.
            let mut ts = 0i64;
            let tuples: Vec<Tuple> = (0..300)
                .map(|_| {
                    ts += rng.below(400) as i64;
                    tup(ts, rng.f64() * 110.0)
                })
                .collect();

            // Reference: the legacy single-tuple entry point.
            let mut expect = Vec::new();
            for t in &tuples {
                for m in single.advance("k", t).unwrap() {
                    expect.push(canonical_match(m.ts, m.started_at, &m.events));
                }
            }

            // Batched: random batch splits over the same stream.
            let mut got = Vec::new();
            let mut scratch = MatchScratch::new();
            let mut rest = tuples.as_slice();
            while !rest.is_empty() {
                let n = (1 + rng.below(64) as usize).min(rest.len());
                let (chunk, tail) = rest.split_at(n);
                batched
                    .advance_batch_into("k", chunk, &mut scratch)
                    .unwrap();
                rest = tail;
            }
            for m in scratch.matches() {
                got.push(canonical_match(m.ts, m.started_at, m.events));
            }

            assert_eq!(got, expect, "seed {seed} pattern `{text}` diverged");
            assert_eq!(
                single.active_runs(),
                batched.active_runs(),
                "seed {seed} pattern `{text}`: run state diverged"
            );
            assert_eq!(
                single.shed_runs(),
                batched.shed_runs(),
                "seed {seed} pattern `{text}`: shed count diverged"
            );
            produced += expect.len();
            shed_hit |= single.shed_runs() > 0;
            expiry_hit |= !single.constraints().is_empty();
        }
    }
    assert!(produced > 100, "sweep must actually match ({produced})");
    assert!(shed_hit, "sweep must exercise max_runs shedding");
    assert!(expiry_hit, "sweep must exercise time constraints");
}

/// A random value for a float-typed slot, heavy on the block kernels'
/// fallback lanes: `Null`s (validity bitmap), `Int`s widening into the
/// float slot and `NaN`/`±inf` floats (deferred to the scalar path next
/// to plain floats).
fn messy_value(rng: &mut Rng) -> gesto::stream::Value {
    use gesto::stream::Value;
    match rng.below(10) {
        0 | 1 => Value::Null,
        2 => Value::Int(rng.below(110) as i64),
        3 => Value::Float(f64::NAN),
        4 => Value::Float(f64::INFINITY * if rng.below(2) == 0 { 1.0 } else { -1.0 }),
        _ => Value::Float(rng.f64() * 110.0),
    }
}

/// Pins the block kernels bit-identical to the scalar oracle on
/// NaN/Null-heavy data: for every row a kernel claims to know, the
/// scalar evaluation must return `Ok` with exactly the value the masks
/// encode; rows whose scalar evaluation errors (NaN comparisons,
/// incomparable types) must never be claimed.
#[test]
fn block_kernels_match_scalar_oracle_on_nan_null_heavy_rows() {
    use gesto::cep::expr::{compile, BlockMasks, EvalScratch};
    use gesto::cep::{parse_expr, FunctionRegistry};
    use gesto::stream::{ColumnBlock, SchemaBuilder, Value};

    let schema = SchemaBuilder::new("k")
        .timestamp("ts")
        .float("x")
        .float("y")
        .float("ax")
        .float("ay")
        .float("az")
        .float("bx")
        .float("by")
        .float("bz")
        .build()
        .unwrap();
    let funcs = FunctionRegistry::with_builtins();
    let exprs = [
        "abs(x - 40) < 25",
        "x > 55",
        "x - y <= 10",
        "x = 40",
        "x != 40",
        "dist(ax, ay, az, bx, by, bz) < 60",
        "abs(x - 40) < 25 and abs(y - 40) < 25",
        "abs(x - 40) < 25 and dist(ax, ay, az, bx, by, bz) < 60 and y >= 10",
        "x < 10 or y < 10 or x > 100",
        "(abs(x - 40) < 25 and y < 50) or x > 100",
    ]
    .map(|text| compile(&parse_expr(text).unwrap(), &schema, &funcs).unwrap());

    let mut known_rows = 0usize;
    let mut fallback_rows = 0usize;
    let mut null_rows = 0usize;
    let mut error_rows = 0usize;
    let mut block = ColumnBlock::new();
    let mut masks = BlockMasks::default();
    let mut scratch = EvalScratch::new();
    for seed in 0..30u64 {
        let mut rng = Rng::new(seed + 0xB10C);
        let tuples: Vec<Tuple> = (0..97)
            .map(|i| {
                let mut vals = vec![gesto::stream::Value::Timestamp(i)];
                vals.extend((1..schema.len()).map(|_| messy_value(&mut rng)));
                Tuple::new(schema.clone(), vals).unwrap()
            })
            .collect();
        block.fill_from_tuples(&tuples);
        for expr in &exprs {
            expr.eval_block(&block, &mut masks, &mut scratch);
            for (r, t) in tuples.iter().enumerate() {
                let scalar = expr.eval(t);
                if !masks.known.get(r) {
                    fallback_rows += 1;
                    error_rows += usize::from(scalar.is_err());
                    continue;
                }
                known_rows += 1;
                let expect = match (masks.truth.get(r), masks.null.get(r)) {
                    (true, false) => Value::Bool(true),
                    (false, true) => {
                        null_rows += 1;
                        Value::Null
                    }
                    (false, false) => Value::Bool(false),
                    (true, true) => panic!("row {r}: truth and null both set"),
                };
                match scalar {
                    Ok(v) => assert_eq!(v, expect, "seed {seed} row {r} of {expr:?}"),
                    Err(e) => panic!("seed {seed} row {r}: kernel claimed an erroring row: {e}"),
                }
            }
        }
    }
    assert!(known_rows > 10_000, "kernels must decide the float bulk");
    assert!(fallback_rows > 1_000, "sweep must exercise fallback lanes");
    assert!(null_rows > 500, "sweep must exercise known-Null rows");
    assert!(error_rows > 100, "sweep must hit scalar error paths");
}

/// The NFA stepping with block + pre-pass must be bit-identical to the
/// single-tuple reference on Null/Int-heavy frames (the fallback lanes),
/// across random patterns, batch splits, shedding and expiry.
#[test]
fn block_nfa_advance_matches_single_tuple_advance_on_null_heavy_frames() {
    use gesto::cep::{parse_pattern, FunctionRegistry, MatchScratch, Nfa, SingleSchema};
    use gesto::stream::{ColumnBlock, SchemaBuilder, Value};

    let schema = SchemaBuilder::new("k")
        .timestamp("ts")
        .float("x")
        .build()
        .unwrap();
    let canonical_match = |ts: i64, started_at: i64, events: &[Tuple]| {
        let ev: Vec<String> = events.iter().map(|t| format!("{:?}", t.values())).collect();
        (ts, started_at, ev)
    };

    let mut produced = 0usize;
    for seed in 0..25u64 {
        let mut rng = Rng::new(seed + 0xF00D);
        let text = random_pattern(&mut rng);
        let pattern = parse_pattern(&text).expect("generated pattern parses");
        let funcs = FunctionRegistry::with_builtins();
        let max_runs = [2usize, 4, 1024][rng.below(3) as usize];
        let mut single = Nfa::compile(&pattern, &SingleSchema(schema.clone()), &funcs)
            .unwrap()
            .with_max_runs(max_runs);
        let mut blocked = Nfa::compile(&pattern, &SingleSchema(schema.clone()), &funcs)
            .unwrap()
            .with_max_runs(max_runs);

        // Null/Int-heavy workload — no NaN/±inf here, so the scalar
        // reference never errors and full streams compare.
        let mut ts = 0i64;
        let tuples: Vec<Tuple> = (0..300)
            .map(|_| {
                ts += rng.below(400) as i64;
                let x = match rng.below(5) {
                    0 => Value::Null,
                    1 => Value::Int(rng.below(110) as i64),
                    _ => Value::Float(rng.f64() * 110.0),
                };
                Tuple::new(schema.clone(), vec![Value::Timestamp(ts), x]).unwrap()
            })
            .collect();

        let mut expect = Vec::new();
        for t in &tuples {
            for m in single.advance("k", t).unwrap() {
                expect.push(canonical_match(m.ts, m.started_at, &m.events));
            }
        }

        let mut got = Vec::new();
        let mut scratch = MatchScratch::new();
        let mut block = ColumnBlock::new();
        let mut rest = tuples.as_slice();
        while !rest.is_empty() {
            let n = (1 + rng.below(64) as usize).min(rest.len());
            let (chunk, tail) = rest.split_at(n);
            block.fill_from_tuples(chunk);
            blocked
                .advance_block_into("k", chunk, Some(&block), &mut scratch)
                .unwrap();
            rest = tail;
        }
        for m in scratch.matches() {
            got.push(canonical_match(m.ts, m.started_at, m.events));
        }

        assert_eq!(got, expect, "seed {seed} pattern `{text}` diverged");
        assert_eq!(single.active_runs(), blocked.active_runs(), "seed {seed}");
        assert_eq!(single.shed_runs(), blocked.shed_runs(), "seed {seed}");
        produced += expect.len();
    }
    assert!(produced > 50, "sweep must actually match ({produced})");
}

/// NaN frames make ordering predicates *error* on the scalar path; the
/// pre-pass must neither swallow nor reorder those errors: the block
/// path errors on exactly the same stream prefix, with the same message
/// and the same matches delivered before the failure.
#[test]
fn block_nfa_preserves_scalar_error_behaviour_on_nan_frames() {
    use gesto::cep::{parse_pattern, FunctionRegistry, MatchScratch, Nfa, SingleSchema};
    use gesto::stream::{ColumnBlock, SchemaBuilder, Value};

    let schema = SchemaBuilder::new("k")
        .timestamp("ts")
        .float("x")
        .build()
        .unwrap();

    let mut errors_hit = 0usize;
    for seed in 0..12u64 {
        let mut rng = Rng::new(seed + 0xA11);
        let text = random_pattern(&mut rng);
        let pattern = parse_pattern(&text).expect("generated pattern parses");
        let funcs = FunctionRegistry::with_builtins();
        let mut single = Nfa::compile(&pattern, &SingleSchema(schema.clone()), &funcs).unwrap();
        let mut blocked = Nfa::compile(&pattern, &SingleSchema(schema.clone()), &funcs).unwrap();

        let mut ts = 0i64;
        let tuples: Vec<Tuple> = (0..120)
            .map(|_| {
                ts += rng.below(300) as i64;
                let x = if rng.below(12) == 0 {
                    Value::Float(f64::NAN)
                } else {
                    Value::Float(rng.f64() * 110.0)
                };
                Tuple::new(schema.clone(), vec![Value::Timestamp(ts), x]).unwrap()
            })
            .collect();

        // Reference: per-tuple advance until the first error.
        let mut expect_matches = 0usize;
        let mut expect_err: Option<(usize, String)> = None;
        for (i, t) in tuples.iter().enumerate() {
            match single.advance("k", t) {
                Ok(ms) => expect_matches += ms.len(),
                Err(e) => {
                    expect_err = Some((i, e.to_string()));
                    break;
                }
            }
        }

        // Block path: one batch over the whole stream. The batched core
        // steps tuple-by-tuple, so it must fail at the same tuple with
        // the earlier matches already in the scratch.
        let mut scratch = MatchScratch::new();
        let mut block = ColumnBlock::new();
        block.fill_from_tuples(&tuples);
        let got = blocked.advance_block_into("k", &tuples, Some(&block), &mut scratch);
        match (&expect_err, got) {
            (Some((_, msg)), Err(e)) => {
                assert_eq!(&e.to_string(), msg, "seed {seed}: different error");
                errors_hit += 1;
            }
            (None, Ok(())) => {}
            (a, b) => panic!("seed {seed}: error behaviour diverged: {a:?} vs {b:?}"),
        }
        assert_eq!(
            scratch.len(),
            expect_matches,
            "seed {seed}: matches before the failure diverged"
        );
    }
    assert!(errors_hit >= 3, "sweep must hit NaN errors ({errors_hit})");
}

#[test]
fn engine_shared_path_matches_seed_per_route_path() {
    let pool = query_pool();
    let schema = kinect_schema();
    let mut non_empty = 0usize;
    for seed in 0..8u64 {
        // Random subset of the pool (always non-empty).
        let mask = (seed * 2 + 1) % 31;
        let set: Vec<_> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, q)| q.clone())
            .collect();
        assert!(!set.is_empty());

        let catalog = standard_catalog();
        let engine = Engine::new(catalog);
        register_rpy(engine.functions());
        let plans: Vec<_> = set
            .iter()
            .map(|q| engine.compile(q.clone()).expect("compiles"))
            .collect();
        for p in &plans {
            engine.deploy_plan(p.clone()).expect("deploys");
        }

        let tuples = frames_to_tuples(&workload(seed), &schema);
        let expect = canonical(reference_detections(&plans, &tuples));
        let got = canonical(engine.push_batch(KINECT_STREAM, &tuples).expect("push"));
        assert_eq!(got, expect, "seed {seed}: shared path diverged");
        non_empty += usize::from(!expect.is_empty());

        // Stats must agree with the reference detections too.
        let mut per_gesture: HashMap<&str, u64> = HashMap::new();
        for (g, ..) in &expect {
            *per_gesture.entry(g.as_str()).or_insert(0) += 1;
        }
        for s in engine.stats_all() {
            assert_eq!(
                s.detections,
                per_gesture.get(s.name.as_str()).copied().unwrap_or(0),
                "seed {seed}: stats for {}",
                s.name
            );
        }
    }
    assert!(non_empty >= 4, "sweep must actually detect gestures");
}

/// Runs a fresh sharded server over the per-session workloads and
/// returns every session's canonical detections (index = session id).
fn sharded_server_detections(
    set: &[gesto::cep::Query],
    sessions: &[Vec<SkeletonFrame>],
    shards: usize,
    pin: bool,
) -> Vec<Vec<CanonicalDetection>> {
    let catalog = standard_catalog();
    let funcs = {
        let e = Engine::new(catalog.clone());
        register_rpy(e.functions());
        e.functions().clone()
    };
    let plans: Vec<_> = set
        .iter()
        .map(|q| QueryPlan::compile(q.clone(), catalog.as_ref(), &funcs).expect("compiles"))
        .collect();
    let server = Server::with_parts(
        ServerConfig::new()
            .with_shards(shards)
            .with_pin_shards(pin)
            .with_backpressure(BackpressurePolicy::Block),
        catalog,
        funcs,
        Arc::new(gesto::db::GestureStore::new()),
    );
    for p in &plans {
        server.deploy_plan(p.clone()).expect("deploys");
    }
    let hits: Arc<Mutex<HashMap<SessionId, Vec<Detection>>>> = Arc::new(Mutex::new(HashMap::new()));
    let sink_hits = hits.clone();
    server.on_detection(Arc::new(move |session, d: &Detection| {
        sink_hits.lock().entry(session).or_default().push(d.clone());
    }));
    // Varying chunk sizes per session so batches of different sessions
    // interleave differently at every shard count.
    for (s, frames) in sessions.iter().enumerate() {
        for chunk in frames.chunks(24 + s * 7) {
            server
                .push_batch(SessionId(s as u64), chunk.to_vec())
                .expect("push");
        }
    }
    server.drain().expect("drain");
    let mut hits = hits.lock();
    let out = (0..sessions.len())
        .map(|s| canonical(hits.remove(&SessionId(s as u64)).unwrap_or_default()))
        .collect();
    server.shutdown();
    out
}

/// The scale-out property: sharding is a pure partitioning of work.
/// For any gesture set and session population, every shard count and
/// either pinning mode produces **bit-identical** per-session detections
/// — and therefore exact conservation of the total detection count —
/// relative to the 1-shard run. Pinning degrades gracefully on hosts
/// where affinity is restricted, so this holds on any machine.
#[test]
fn shard_count_and_pinning_do_not_change_detections() {
    let pool = query_pool();
    let mut rng = Rng::new(0x5AA5);
    let mut detected = 0usize;
    for case in 0..2u64 {
        // Random non-empty query subset and a session population whose
        // size is not a multiple of any shard count under test.
        let mask = 1 + rng.below(31);
        let set: Vec<_> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, q)| q.clone())
            .collect();
        let sessions: Vec<Vec<SkeletonFrame>> = (0..3 + case as usize * 2)
            .map(|_| workload(rng.below(8)))
            .collect();

        let baseline = sharded_server_detections(&set, &sessions, 1, false);
        let total: usize = baseline.iter().map(Vec::len).sum();
        detected += total;

        for (shards, pin) in [
            (2, false),
            (4, false),
            (8, false),
            (2, true),
            (4, true),
            (8, true),
        ] {
            let got = sharded_server_detections(&set, &sessions, shards, pin);
            let conserved: usize = got.iter().map(Vec::len).sum();
            assert_eq!(
                conserved, total,
                "case {case}: {shards} shards (pin={pin}) lost/duplicated detections"
            );
            assert_eq!(
                got, baseline,
                "case {case}: {shards} shards (pin={pin}) diverged from 1 shard"
            );
        }
    }
    assert!(detected > 0, "sweep must actually detect gestures");
}

#[test]
fn server_sessions_match_seed_per_route_path() {
    let pool = query_pool();
    let schema = kinect_schema();
    let set = &pool[..4];

    let catalog = standard_catalog();
    let funcs = {
        let e = Engine::new(catalog.clone());
        register_rpy(e.functions());
        e.functions().clone()
    };
    let plans: Vec<_> = set
        .iter()
        .map(|q| QueryPlan::compile(q.clone(), catalog.as_ref(), &funcs).expect("compiles"))
        .collect();

    let server = Server::with_parts(
        ServerConfig::new()
            .with_shards(2)
            .with_backpressure(BackpressurePolicy::Block),
        catalog,
        funcs,
        Arc::new(gesto::db::GestureStore::new()),
    );
    for p in &plans {
        server.deploy_plan(p.clone()).expect("deploys");
    }
    let hits: Arc<Mutex<HashMap<SessionId, Vec<Detection>>>> = Arc::new(Mutex::new(HashMap::new()));
    let sink_hits = hits.clone();
    server.on_detection(Arc::new(move |session, d: &Detection| {
        sink_hits.lock().entry(session).or_default().push(d.clone());
    }));

    const SESSIONS: u64 = 6;
    for s in 0..SESSIONS {
        // Two sessions share each workload seed → identical expectations
        // on different shards.
        let frames = workload(s / 2);
        for chunk in frames.chunks(32) {
            server
                .push_batch(SessionId(s), chunk.to_vec())
                .expect("push");
        }
    }
    server.drain().expect("drain");

    let mut hits = hits.lock();
    for s in 0..SESSIONS {
        let tuples = frames_to_tuples(&workload(s / 2), &schema);
        let expect = canonical(reference_detections(&plans, &tuples));
        let got = canonical(hits.remove(&SessionId(s)).unwrap_or_default());
        assert_eq!(got, expect, "session {s} diverged from per-route path");
        assert!(!expect.is_empty(), "session {s} must detect something");
    }
    server.shutdown();
}

//! Data model of the learner: joint sets, sample paths, learned gesture
//! definitions.

use gesto_kinect::{joint_from_tuple, Joint, SkeletonFrame};
use gesto_stream::Tuple;
use serde::{Deserialize, Serialize};

use crate::window::PoseWindow;

/// The ordered set of joints a gesture is defined over. Feature vectors
/// concatenate `(x, y, z)` per joint in this order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointSet {
    joints: Vec<Joint>,
}

impl JointSet {
    /// Creates a joint set (order matters, duplicates removed).
    pub fn new(joints: impl IntoIterator<Item = Joint>) -> Self {
        let mut out = Vec::new();
        for j in joints {
            if !out.contains(&j) {
                out.push(j);
            }
        }
        Self { joints: out }
    }

    /// The common single-joint case: right hand only.
    pub fn right_hand() -> Self {
        Self::new([Joint::RightHand])
    }

    /// Both hands.
    pub fn both_hands() -> Self {
        Self::new([Joint::RightHand, Joint::LeftHand])
    }

    /// Joints in feature order.
    pub fn joints(&self) -> &[Joint] {
        &self.joints
    }

    /// Number of feature dimensions (3 per joint).
    pub fn dims(&self) -> usize {
        self.joints.len() * 3
    }

    /// Field name of dimension `d` (e.g. `rHand_x`).
    pub fn dim_name(&self, d: usize) -> String {
        let joint = self.joints[d / 3];
        let axis = ["x", "y", "z"][d % 3];
        format!("{}_{axis}", joint.prefix())
    }

    /// Extracts the feature vector from a (transformed) kinect-layout
    /// tuple; `None` when any selected joint is untracked.
    pub fn features_from_tuple(&self, tuple: &Tuple) -> Option<Vec<f64>> {
        let mut feat = Vec::with_capacity(self.dims());
        for j in &self.joints {
            let p = joint_from_tuple(tuple, *j, "")?;
            feat.extend_from_slice(&[p.x, p.y, p.z]);
        }
        Some(feat)
    }

    /// Extracts the feature vector from a skeleton frame.
    pub fn features_from_frame(&self, frame: &SkeletonFrame) -> Option<Vec<f64>> {
        let mut feat = Vec::with_capacity(self.dims());
        for j in &self.joints {
            let p = frame.joint(*j)?;
            feat.extend_from_slice(&[p.x, p.y, p.z]);
        }
        Some(feat)
    }
}

impl Default for JointSet {
    fn default() -> Self {
        Self::right_hand()
    }
}

/// One point on a recorded gesture path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathPoint {
    /// Stream time of the reading.
    pub ts: i64,
    /// Feature vector (see [`JointSet`]).
    pub feat: Vec<f64>,
}

impl PathPoint {
    /// Creates a path point.
    pub fn new(ts: i64, feat: Vec<f64>) -> Self {
        Self { ts, feat }
    }
}

/// A recorded gesture sample: the filtered feature path of one
/// performance.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GestureSample {
    /// Path points in stream order.
    pub points: Vec<PathPoint>,
}

impl GestureSample {
    /// Builds a sample from (transformed) tuples, skipping readings where
    /// a selected joint is untracked.
    pub fn from_tuples(tuples: &[Tuple], joints: &JointSet) -> Self {
        let points = tuples
            .iter()
            .filter_map(|t| {
                let ts = t.timestamp()?;
                let feat = joints.features_from_tuple(t)?;
                Some(PathPoint::new(ts, feat))
            })
            .collect();
        Self { points }
    }

    /// Builds a sample from skeleton frames.
    pub fn from_frames(frames: &[SkeletonFrame], joints: &JointSet) -> Self {
        let points = frames
            .iter()
            .filter_map(|f| {
                joints
                    .features_from_frame(f)
                    .map(|feat| PathPoint::new(f.ts, feat))
            })
            .collect();
        Self { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the sample has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Duration from first to last point, ms.
    pub fn duration_ms(&self) -> i64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.ts - a.ts,
            _ => 0,
        }
    }
}

/// A learned gesture: the final output of the §3.3 pipeline, ready for
/// query generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GestureDefinition {
    /// Gesture name (becomes the query's `SELECT` string).
    pub name: String,
    /// Joints the windows range over.
    pub joints: JointSet,
    /// Pose windows in sequence order.
    pub poses: Vec<PoseWindow>,
    /// Per-transition time budget in ms (`within` of each nested
    /// sequence); `poses.len() - 1` entries.
    pub within_ms: Vec<i64>,
    /// Which feature dimensions carry predicates (the §3.3.3 coordinate
    /// elimination); always `dims()` long.
    pub active_dims: Vec<bool>,
    /// How many samples contributed.
    pub sample_count: usize,
}

impl GestureDefinition {
    /// Number of poses.
    pub fn pose_count(&self) -> usize {
        self.poses.len()
    }

    /// Number of active dimensions.
    pub fn active_dim_count(&self) -> usize {
        self.active_dims.iter().filter(|b| **b).count()
    }

    /// Total number of range predicates the generated query will contain.
    pub fn predicate_count(&self) -> usize {
        self.pose_count() * self.active_dim_count()
    }

    /// Checks structural invariants (used by tests and the DB layer).
    pub fn validate(&self) -> Result<(), String> {
        let dims = self.joints.dims();
        if self.poses.is_empty() {
            return Err(format!("gesture '{}' has no poses", self.name));
        }
        for (i, p) in self.poses.iter().enumerate() {
            if p.dims() != dims {
                return Err(format!(
                    "gesture '{}': pose {i} has {} dims, joint set needs {dims}",
                    self.name,
                    p.dims()
                ));
            }
        }
        if self.within_ms.len() + 1 != self.poses.len() {
            return Err(format!(
                "gesture '{}': {} within entries for {} poses",
                self.name,
                self.within_ms.len(),
                self.poses.len()
            ));
        }
        if self.active_dims.len() != dims {
            return Err(format!(
                "gesture '{}': active_dims has {} entries, need {dims}",
                self.name,
                self.active_dims.len()
            ));
        }
        if self.active_dim_count() == 0 {
            return Err(format!(
                "gesture '{}': all dimensions eliminated",
                self.name
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gesto_kinect::{frame_to_tuple, kinect_schema, Vec3};

    #[test]
    fn joint_set_dedup_and_dims() {
        let js = JointSet::new([Joint::RightHand, Joint::RightHand, Joint::LeftHand]);
        assert_eq!(js.joints().len(), 2);
        assert_eq!(js.dims(), 6);
        assert_eq!(js.dim_name(0), "rHand_x");
        assert_eq!(js.dim_name(5), "lHand_z");
    }

    #[test]
    fn features_from_frame_and_tuple() {
        let js = JointSet::both_hands();
        let mut f = SkeletonFrame::empty(10, 1);
        f.set_joint(Joint::RightHand, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(js.features_from_frame(&f), None, "left hand missing");
        f.set_joint(Joint::LeftHand, Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(
            js.features_from_frame(&f),
            Some(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        );
        let t = frame_to_tuple(&f, &kinect_schema());
        assert_eq!(
            js.features_from_tuple(&t),
            Some(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        );
    }

    #[test]
    fn sample_skips_dropout_frames() {
        let js = JointSet::right_hand();
        let mut ok = SkeletonFrame::empty(0, 1);
        ok.set_joint(Joint::RightHand, Vec3::new(1.0, 1.0, 1.0));
        let missing = SkeletonFrame::empty(33, 1);
        let mut ok2 = SkeletonFrame::empty(66, 1);
        ok2.set_joint(Joint::RightHand, Vec3::new(2.0, 2.0, 2.0));
        let s = GestureSample::from_frames(&[ok, missing, ok2], &js);
        assert_eq!(s.len(), 2);
        assert_eq!(s.duration_ms(), 66);
    }

    #[test]
    fn definition_validation() {
        let js = JointSet::right_hand();
        let def = GestureDefinition {
            name: "g".into(),
            joints: js.clone(),
            poses: vec![
                PoseWindow::point(vec![0.0; 3]),
                PoseWindow::point(vec![1.0; 3]),
            ],
            within_ms: vec![1000],
            active_dims: vec![true, true, false],
            sample_count: 1,
        };
        assert!(def.validate().is_ok());
        assert_eq!(def.predicate_count(), 4);

        let mut bad = def.clone();
        bad.within_ms = vec![];
        assert!(bad.validate().is_err());

        let mut bad = def.clone();
        bad.active_dims = vec![false, false, false];
        assert!(bad.validate().is_err());

        let mut bad = def;
        bad.poses[0] = PoseWindow::point(vec![0.0; 2]);
        assert!(bad.validate().is_err());
    }
}

//! Predicate filter operator.

use crate::operator::{Emit, Operator};
use crate::schema::SchemaRef;
use crate::tuple::Tuple;

/// Passes tuples for which the predicate returns `true`.
pub struct FilterOp {
    name: String,
    schema: SchemaRef,
    pred: Box<dyn FnMut(&Tuple) -> bool + Send>,
}

impl FilterOp {
    /// Creates a filter; the output schema equals the input schema.
    pub fn new(
        name: impl Into<String>,
        schema: SchemaRef,
        pred: impl FnMut(&Tuple) -> bool + Send + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            schema,
            pred: Box::new(pred),
        }
    }
}

impl Operator for FilterOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    fn process(&mut self, tuple: &Tuple, emit: &mut Emit<'_>) {
        if (self.pred)(tuple) {
            emit(tuple.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::run_operator;
    use crate::schema::SchemaBuilder;
    use crate::value::Value;

    #[test]
    fn filters_by_predicate() {
        let schema = SchemaBuilder::new("s").int("a").build().unwrap();
        let mut op = FilterOp::new("even", schema.clone(), |t| {
            t.i64("a").map(|v| v % 2 == 0).unwrap_or(false)
        });
        let mk = |a: i64| Tuple::new(schema.clone(), vec![Value::Int(a)]).unwrap();
        let out = run_operator(&mut op, &[mk(1), mk(2), mk(3), mk(4)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].i64("a"), Some(4));
    }
}

//! E4 — Fig. 4: distance-based sampling and window merging, quantified.
//!
//! (a) number of mined windows vs the `max_dist` threshold (Fig. 4 top);
//! (b) MBR growth and outlier warnings as samples merge (Fig. 4 bottom);
//! (c) the resulting window table in the style of the Fig. 2 gesture
//!     database panel.

use gesto_bench::{perform, transform_frames, Table};
use gesto_kinect::{gestures, NoiseModel, Persona};
use gesto_learn::sampling::{sample_path, CentroidMode, Strategy};
use gesto_learn::{
    GestureSample, JointSet, Learner, LearnerConfig, MergeWarning, Metric, Threshold,
};

fn main() {
    println!("E4 / Fig. 4 — distance-based sampling & window merging");
    println!("========================================================\n");
    let persona = Persona::reference().with_noise(NoiseModel::realistic());
    let joints = JointSet::right_hand();

    // (a) threshold sweep on one swipe sample.
    let frames = transform_frames(&perform(&gestures::swipe_right(), &persona, 1));
    let sample = GestureSample::from_frames(&frames, &joints);
    println!(
        "(a) windows vs max_dist threshold — one swipe sample, {} readings",
        sample.len()
    );
    let mut table = Table::new(&["max_dist (% of path)", "windows", "compression"]);
    for fraction in [0.05, 0.08, 0.1, 0.15, 0.22, 0.3, 0.4, 0.6] {
        let pts = sample_path(
            &sample.points,
            Strategy::DistanceBased {
                metric: Metric::Euclidean,
                threshold: Threshold::RelativePathFraction(fraction),
                centroid: CentroidMode::Reference,
            },
        );
        table.row(&[
            format!("{:.0}%", fraction * 100.0),
            format!("{}", pts.len()),
            format!("{:.1}x", sample.len() as f64 / pts.len() as f64),
        ]);
    }
    table.print();

    // (b) incremental merging: window growth + warnings.
    println!("\n(b) incremental window merging over 6 samples (+1 deliberate outlier)");
    let mut learner = Learner::new(LearnerConfig::default());
    let mut table = Table::new(&[
        "sample",
        "poses",
        "mean half-width (mm)",
        "max half-width (mm)",
        "warnings",
    ]);
    for seed in 0..6u64 {
        let frames = transform_frames(&perform(&gestures::swipe_right(), &persona, 10 + seed));
        let warns = learner.add_sample_frames(&frames).expect("sample ok");
        let windows = learner.windows();
        let widths: Vec<f64> = windows.iter().flat_map(|w| w.width.clone()).collect();
        let mean = widths.iter().sum::<f64>() / widths.len().max(1) as f64;
        let max = widths.iter().cloned().fold(0.0, f64::max);
        table.row(&[
            format!("{}", seed + 1),
            format!("{}", windows.len()),
            format!("{mean:.1}"),
            format!("{max:.1}"),
            format!("{}", warns.len()),
        ]);
    }
    // The outlier: a circle recorded as if it were a swipe sample.
    let circle = transform_frames(&perform(&gestures::circle(), &persona, 99));
    let warns = learner.add_sample_frames(&circle).expect("sample ok");
    let outliers = warns
        .iter()
        .filter(|w| matches!(w, MergeWarning::Outlier { .. }))
        .count();
    table.row(&[
        "7 (circle!)".into(),
        format!("{}", learner.windows().len()),
        "—".into(),
        "—".into(),
        format!("{} ({} outlier)", warns.len(), outliers),
    ]);
    table.print();
    println!("\n(the deviating sample triggers the §3.3.2 warning, as in the paper)");

    // (c) final window table (Fig. 2 gesture-database style).
    let mut learner = Learner::new(LearnerConfig::default());
    for seed in 0..4u64 {
        let frames = transform_frames(&perform(&gestures::swipe_right(), &persona, 40 + seed));
        learner.add_sample_frames(&frames).unwrap();
    }
    let def = learner.finalize("swipe_right").unwrap();
    println!(
        "\n(c) final gesture description: \"{}\" — {} poses from {} samples",
        def.name,
        def.pose_count(),
        def.sample_count
    );
    let mut table = Table::new(&["pose", "center (x, y, z)", "half-width (x, y, z)", "within"]);
    for (i, w) in def.poses.iter().enumerate() {
        let within = if i == 0 {
            "—".to_string()
        } else {
            format!("{} ms", def.within_ms[i - 1])
        };
        table.row(&[
            format!("{}", i + 1),
            format!(
                "({:.0}, {:.0}, {:.0})",
                w.center[0], w.center[1], w.center[2]
            ),
            format!("({:.0}, {:.0}, {:.0})", w.width[0], w.width[1], w.width[2]),
            within,
        ]);
    }
    table.print();
}

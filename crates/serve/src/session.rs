//! Session identifiers.

use std::fmt;

/// Identifies one live skeleton stream (one user/device connection).
///
/// The id doubles as the routing key: session `s` lives on shard
/// `splitmix64(s.0) % shards`, so a session's frames are always
/// processed by the same worker thread in push order — which is what
/// keeps per-session NFA state single-threaded and lock-free.
///
/// Routing hashes the id rather than taking it modulo directly because
/// real id populations are anything but uniform: sequential allocation
/// (the network edge hands out consecutive ids), stride patterns
/// (`user_id * 16`), or ids already carrying a shard number in their low
/// bits would all pile onto a subset of shards under plain modulo. The
/// splitmix64 finaliser is a full-avalanche bijection, so any distinct
/// id population spreads near-uniformly — see
/// `shard_routing_spreads_adversarial_populations`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// The splitmix64 finaliser: a cheap (3 multiplies/xor-shifts) bijection
/// on `u64` with full avalanche — every input bit affects every output
/// bit with probability ~1/2.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SessionId {
    /// Shard index this session routes to given `shards` workers.
    ///
    /// Deterministic for the life of the process (same id + same shard
    /// count → same shard), so detections stay bit-identical across
    /// shard counts: routing only selects *which* single-threaded
    /// worker owns the session, never how its frames are evaluated.
    pub fn shard(&self, shards: usize) -> usize {
        (splitmix64(self.0) % shards.max(1) as u64) as usize
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

impl From<u64> for SessionId {
    fn from(v: u64) -> Self {
        SessionId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Max per-shard deviation from a perfectly even spread, as a
    /// fraction of the expected per-shard count.
    fn max_skew(ids: impl Iterator<Item = u64>, shards: usize) -> f64 {
        let mut counts = vec![0usize; shards];
        let mut n = 0usize;
        for id in ids {
            counts[SessionId(id).shard(shards)] += 1;
            n += 1;
        }
        let expected = n as f64 / shards as f64;
        counts
            .iter()
            .map(|&c| (c as f64 - expected).abs() / expected)
            .fold(0.0, f64::max)
    }

    #[test]
    fn shard_routing_spreads_adversarial_populations() {
        // Populations that plain modulo routes pathologically: strided
        // ids (mod 8 would put `i * 8` entirely on shard 0) and ids with
        // constant low bits. Sequential ids are the common benign case.
        for shards in [2usize, 4, 8] {
            let n = 4096u64;
            let sequential = 0..n;
            let strided = (0..n).map(|i| i * 8);
            let high_entropy_low_zero = (0..n).map(|i| splitmix64(i) << 16);
            for (name, skew) in [
                ("sequential", max_skew(sequential.clone(), shards)),
                ("strided", max_skew(strided, shards)),
                ("low-zero", max_skew(high_entropy_low_zero, shards)),
            ] {
                assert!(
                    skew < 0.25,
                    "{name} ids skew {skew:.3} across {shards} shards"
                );
            }
        }
    }

    #[test]
    fn shard_routing_is_deterministic_and_in_range() {
        for id in [0u64, 1, 42, u64::MAX] {
            for shards in [1usize, 2, 4, 8, 7] {
                let s = SessionId(id).shard(shards);
                assert!(s < shards);
                assert_eq!(s, SessionId(id).shard(shards));
            }
            // Degenerate shard count clamps to one shard.
            assert_eq!(SessionId(id).shard(0), 0);
        }
    }
}

//! Gesture path primitives and timing profiles.
//!
//! A [`PathSpec`] maps a normalised parameter `u ∈ [0, 1]` to a point in
//! *user-local gesture space*: x = user's right, y = up, z = signed depth
//! relative to the torso (negative in front of the user), in millimetres
//! of the reference body — the coordinate convention of the paper's
//! Fig. 1/Fig. 2 window tables.

use serde::{Deserialize, Serialize};

use crate::vec3::Vec3;

/// Minimum-jerk time warp: position parameter as a smooth function of
/// normalised time (zero velocity and acceleration at both ends), the
/// standard model for point-to-point human reaching movements.
pub fn min_jerk(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * t * (10.0 + t * (-15.0 + 6.0 * t))
}

/// How path parameter progresses over gesture time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TimeProfile {
    /// Minimum-jerk ease-in/ease-out (natural human movement).
    #[default]
    MinJerk,
    /// Constant velocity.
    Linear,
}

impl TimeProfile {
    /// Warps normalised time `t` into path parameter `u`.
    pub fn warp(&self, t: f64) -> f64 {
        match self {
            TimeProfile::MinJerk => min_jerk(t),
            TimeProfile::Linear => t.clamp(0.0, 1.0),
        }
    }
}

/// A parametric path in user-local gesture space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PathSpec {
    /// Hold a fixed point.
    Hold(Vec3),
    /// Piecewise-linear interpolation through waypoints (arc-length
    /// parameterised across segments).
    Waypoints(Vec<Vec3>),
    /// Catmull-Rom spline through waypoints (smooth arcs, like the
    /// forward-bowed swipe of Fig. 1).
    Spline(Vec<Vec3>),
    /// Circle in the frontal (x/y) plane.
    Circle {
        /// Centre of the circle.
        center: Vec3,
        /// Radius in mm.
        radius: f64,
        /// Start angle in radians (0 = rightmost point, π/2 = top).
        start_angle: f64,
        /// Signed number of turns (negative = counter-clockwise).
        turns: f64,
    },
    /// Horizontal oscillation around an anchor (a wave gesture).
    Oscillation {
        /// Anchor point.
        center: Vec3,
        /// Peak lateral displacement in mm.
        amplitude: f64,
        /// Number of full left-right cycles.
        cycles: f64,
    },
}

impl PathSpec {
    /// Point at parameter `u ∈ [0, 1]`.
    pub fn at(&self, u: f64) -> Vec3 {
        let u = u.clamp(0.0, 1.0);
        match self {
            PathSpec::Hold(p) => *p,
            PathSpec::Waypoints(pts) => waypoint_at(pts, u),
            PathSpec::Spline(pts) => spline_at(pts, u),
            PathSpec::Circle {
                center,
                radius,
                start_angle,
                turns,
            } => {
                let angle = start_angle + u * turns * std::f64::consts::TAU;
                Vec3::new(
                    center.x + radius * angle.cos(),
                    center.y + radius * angle.sin(),
                    center.z,
                )
            }
            PathSpec::Oscillation {
                center,
                amplitude,
                cycles,
            } => {
                let phase = u * cycles * std::f64::consts::TAU;
                Vec3::new(center.x + amplitude * phase.sin(), center.y, center.z)
            }
        }
    }

    /// Start point.
    pub fn start(&self) -> Vec3 {
        self.at(0.0)
    }

    /// End point.
    pub fn end(&self) -> Vec3 {
        self.at(1.0)
    }

    /// Approximate arc length (mm) via uniform sampling.
    pub fn arc_length(&self, samples: usize) -> f64 {
        let n = samples.max(2);
        let mut len = 0.0;
        let mut prev = self.at(0.0);
        for i in 1..=n {
            let p = self.at(i as f64 / n as f64);
            len += prev.dist(&p);
            prev = p;
        }
        len
    }
}

fn waypoint_at(pts: &[Vec3], u: f64) -> Vec3 {
    match pts.len() {
        0 => Vec3::ZERO,
        1 => pts[0],
        _ => {
            // Arc-length parameterisation over the polyline.
            let mut seg_lens = Vec::with_capacity(pts.len() - 1);
            let mut total = 0.0;
            for w in pts.windows(2) {
                let l = w[0].dist(&w[1]);
                seg_lens.push(l);
                total += l;
            }
            if total <= 0.0 {
                return pts[0];
            }
            let mut target = u * total;
            for (i, l) in seg_lens.iter().enumerate() {
                if target <= *l || i == seg_lens.len() - 1 {
                    let t = if *l > 0.0 {
                        (target / l).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    return pts[i].lerp(&pts[i + 1], t);
                }
                target -= l;
            }
            *pts.last().expect("non-empty")
        }
    }
}

fn spline_at(pts: &[Vec3], u: f64) -> Vec3 {
    match pts.len() {
        0 => Vec3::ZERO,
        1 => pts[0],
        2 => pts[0].lerp(&pts[1], u),
        _ => {
            // Uniform Catmull-Rom over the control points, with clamped
            // phantom endpoints.
            let segs = pts.len() - 1;
            let pos = u * segs as f64;
            let i = (pos.floor() as usize).min(segs - 1);
            let t = pos - i as f64;
            let p0 = pts[i.saturating_sub(1)];
            let p1 = pts[i];
            let p2 = pts[i + 1];
            let p3 = pts[(i + 2).min(pts.len() - 1)];
            catmull_rom(p0, p1, p2, p3, t)
        }
    }
}

fn catmull_rom(p0: Vec3, p1: Vec3, p2: Vec3, p3: Vec3, t: f64) -> Vec3 {
    let t2 = t * t;
    let t3 = t2 * t;
    (p1 * 2.0
        + (p2 - p0) * t
        + (p0 * 2.0 - p1 * 5.0 + p2 * 4.0 - p3) * t2
        + ((p1 - p2) * 3.0 + p3 - p0) * t3)
        * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_jerk_boundary_conditions() {
        assert_eq!(min_jerk(0.0), 0.0);
        assert_eq!(min_jerk(1.0), 1.0);
        assert!((min_jerk(0.5) - 0.5).abs() < 1e-12, "symmetric at midpoint");
        // Near-zero velocity at the ends.
        let v0 = (min_jerk(0.01) - min_jerk(0.0)) / 0.01;
        let vmid = (min_jerk(0.51) - min_jerk(0.49)) / 0.02;
        assert!(v0 < 0.01, "slow start: {v0}");
        assert!(vmid > 1.5, "fast middle: {vmid}");
        // Clamps outside [0,1].
        assert_eq!(min_jerk(-1.0), 0.0);
        assert_eq!(min_jerk(2.0), 1.0);
    }

    #[test]
    fn waypoints_arc_length_parameterised() {
        // Unequal segments: midpoint of total length lies in the long leg.
        let p = PathSpec::Waypoints(vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(10.0, 0.0, 0.0),
            Vec3::new(10.0, 90.0, 0.0),
        ]);
        assert_eq!(p.start(), Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(p.end(), Vec3::new(10.0, 90.0, 0.0));
        let mid = p.at(0.5); // total 100, at 50 -> 40 into the vertical leg
        assert!((mid.x - 10.0).abs() < 1e-9);
        assert!((mid.y - 40.0).abs() < 1e-9);
    }

    #[test]
    fn spline_passes_through_control_points() {
        let pts = vec![
            Vec3::new(0.0, 150.0, -120.0),
            Vec3::new(400.0, 150.0, -420.0),
            Vec3::new(800.0, 150.0, -120.0),
        ];
        let p = PathSpec::Spline(pts.clone());
        assert!(p.at(0.0).dist(&pts[0]) < 1e-9);
        assert!(p.at(0.5).dist(&pts[1]) < 1e-9);
        assert!(p.at(1.0).dist(&pts[2]) < 1e-9);
    }

    #[test]
    fn circle_geometry() {
        let c = PathSpec::Circle {
            center: Vec3::new(300.0, 200.0, -150.0),
            radius: 300.0,
            start_angle: std::f64::consts::FRAC_PI_2,
            turns: 1.0,
        };
        // Starts at top, returns to start after a full turn.
        assert!(c.start().dist(&Vec3::new(300.0, 500.0, -150.0)) < 1e-9);
        assert!(c.end().dist(&c.start()) < 1e-9);
        // Every point is on the circle.
        for i in 0..=20 {
            let p = c.at(i as f64 / 20.0);
            let d = ((p.x - 300.0).powi(2) + (p.y - 200.0).powi(2)).sqrt();
            assert!((d - 300.0).abs() < 1e-9);
            assert_eq!(p.z, -150.0);
        }
    }

    #[test]
    fn oscillation_cycles() {
        let w = PathSpec::Oscillation {
            center: Vec3::new(200.0, 500.0, -150.0),
            amplitude: 150.0,
            cycles: 2.0,
        };
        assert!(w.start().dist(&Vec3::new(200.0, 500.0, -150.0)) < 1e-9);
        // Peak at u = 1/8 (first quarter of first cycle).
        let peak = w.at(0.125);
        assert!((peak.x - 350.0).abs() < 1e-9);
    }

    #[test]
    fn arc_length_of_line() {
        let p = PathSpec::Waypoints(vec![Vec3::ZERO, Vec3::new(100.0, 0.0, 0.0)]);
        assert!((p.arc_length(32) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn hold_is_constant() {
        let p = PathSpec::Hold(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(p.at(0.3), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(p.arc_length(8), 0.0);
    }

    #[test]
    fn degenerate_waypoints() {
        assert_eq!(PathSpec::Waypoints(vec![]).at(0.5), Vec3::ZERO);
        let one = PathSpec::Waypoints(vec![Vec3::new(1.0, 1.0, 1.0)]);
        assert_eq!(one.at(0.7), Vec3::new(1.0, 1.0, 1.0));
        // Coincident points: no NaN.
        let same = PathSpec::Waypoints(vec![Vec3::ZERO, Vec3::ZERO]);
        assert_eq!(same.at(0.5), Vec3::ZERO);
    }
}

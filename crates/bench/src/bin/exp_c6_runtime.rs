//! C6 — runtime query exchange (§3.1/§4): gestures can be deployed,
//! replaced and removed while the stream is live, with no missed frames.

use std::time::Instant;

use gesto_bench::{learn_gesture, Table};
use gesto_cep::Engine;
use gesto_kinect::{
    frame_to_tuple, gestures, kinect_schema, NoiseModel, Performer, Persona, KINECT_STREAM,
};
use gesto_learn::query_gen::{generate_query, QueryStyle};
use gesto_learn::LearnerConfig;
use gesto_transform::standard_catalog;

fn main() {
    println!("C6 — runtime deployment / exchange on a live stream");
    println!("=====================================================\n");

    let engine = Engine::new(standard_catalog());
    let schema = kinect_schema();
    let swipe = learn_gesture(&gestures::swipe_right(), 3, 100, LearnerConfig::default());
    let circle = learn_gesture(&gestures::circle(), 3, 200, LearnerConfig::default());

    // Live stream: endless alternation of swipe and circle performances.
    let persona = Persona::reference().with_noise(NoiseModel::realistic());
    let mut performer = Performer::new(persona, 0);
    let mut frames = Vec::new();
    for _ in 0..6 {
        frames.extend(performer.render_padded(&gestures::swipe_right(), 300, 300));
        frames.extend(performer.render_padded(&gestures::circle(), 300, 300));
    }
    println!(
        "stream: {} frames alternating swipe/circle performances (6 each)\n",
        frames.len()
    );

    // Phase plan: deploy swipe at frame 0, add circle at 1/3, replace
    // swipe with a renamed binding at 2/3, undeploy circle near the end.
    let n = frames.len();
    let phase2 = n / 3;
    let phase3 = 2 * n / 3;
    let phase4 = n - n / 10;

    engine
        .deploy(generate_query(&swipe, QueryStyle::TransformedView))
        .unwrap();

    let mut log: Vec<(usize, String)> = vec![(0, "deploy swipe_right".into())];
    let mut detections: Vec<(usize, String)> = Vec::new();
    let mut exchange_cost_us = Vec::new();

    for (i, frame) in frames.iter().enumerate() {
        if i == phase2 {
            let t = Instant::now();
            engine
                .deploy(generate_query(&circle, QueryStyle::TransformedView))
                .unwrap();
            exchange_cost_us.push(t.elapsed().as_secs_f64() * 1e6);
            log.push((i, "deploy circle (live)".into()));
        }
        if i == phase3 {
            let t = Instant::now();
            let mut renamed = swipe.clone();
            renamed.name = "swipe_right_v2".into();
            engine.undeploy("swipe_right").unwrap();
            engine
                .deploy(generate_query(&renamed, QueryStyle::TransformedView))
                .unwrap();
            exchange_cost_us.push(t.elapsed().as_secs_f64() * 1e6);
            log.push((i, "exchange swipe_right -> swipe_right_v2 (live)".into()));
        }
        if i == phase4 {
            let t = Instant::now();
            engine.undeploy("circle").unwrap();
            exchange_cost_us.push(t.elapsed().as_secs_f64() * 1e6);
            log.push((i, "undeploy circle (live)".into()));
        }
        let tuple = frame_to_tuple(frame, &schema);
        for d in engine.push(KINECT_STREAM, &tuple).unwrap() {
            detections.push((i, d.gesture));
        }
    }

    println!("deployment log:");
    let mut table = Table::new(&["frame", "action"]);
    for (i, what) in &log {
        table.row(&[format!("{i}"), what.clone()]);
    }
    table.print();

    println!("\ndetections per phase:");
    let mut table = Table::new(&["phase", "frames", "swipe_right", "swipe_right_v2", "circle"]);
    let phases = [
        ("1: swipe only", 0, phase2),
        ("2: swipe + circle", phase2, phase3),
        ("3: v2 + circle", phase3, phase4),
        ("4: v2 only", phase4, n),
    ];
    for (label, from, to) in phases {
        let count = |name: &str| {
            detections
                .iter()
                .filter(|(i, g)| *i >= from && *i < to && g == name)
                .count()
        };
        table.row(&[
            label.to_string(),
            format!("{from}..{to}"),
            format!("{}", count("swipe_right")),
            format!("{}", count("swipe_right_v2")),
            format!("{}", count("circle")),
        ]);
    }
    table.print();

    let avg_us = exchange_cost_us.iter().sum::<f64>() / exchange_cost_us.len() as f64;
    println!(
        "\nexchange cost: avg {avg_us:.0} us per deploy/undeploy — orders of \
         magnitude below the 33 ms frame budget (zero downtime)"
    );
    println!("\nexpected shape (paper §4): bindings change mid-stream; detections");
    println!("switch phases exactly at the exchange points.");
}

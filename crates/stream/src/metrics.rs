//! Process-global telemetry statics for the columnar substrate.
//!
//! Like `gesto_cep::metrics`, these are `const`-initialised statics
//! updated with relaxed atomic adds from the hot path and exported by
//! `'static` reference from `gesto-serve`'s registry — the block
//! builders are shared by every session and have no registry handle to
//! thread through.

use gesto_telemetry::Counter;

/// Columnar frame blocks materialised ([`crate::ColumnBlock::begin`] /
/// `begin_filtered` calls).
pub static BLOCKS_BUILT_TOTAL: Counter = Counter::new();

/// Rows materialised across all built blocks.
pub static BLOCK_ROWS_BUILT_TOTAL: Counter = Counter::new();

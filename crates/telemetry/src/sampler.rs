//! 1-in-N sampling decisions for stage timers.
//!
//! Taking two `Instant::now()` readings per pipeline stage per batch is
//! cheap but not free; doing it for one batch in N keeps the histograms
//! statistically useful while the steady state pays a single branch on
//! a local counter. Two flavours: [`Sampler`] for a value owned by one
//! thread (a shard worker, the I/O loop), [`SharedSampler`] for
//! process-global statics shared across threads.

use std::sync::atomic::{AtomicU32, Ordering};

/// Single-owner countdown sampler: `sample()` returns `true` on the
/// first call and then once every `every` calls.
///
/// Not thread-safe by design — each worker owns its own, so the hot
/// path is a plain integer decrement with no atomics at all.
#[derive(Debug, Clone)]
pub struct Sampler {
    every: u32,
    tick: u32,
}

impl Sampler {
    /// A sampler that fires once every `every` calls (first call
    /// included). `every == 0` disables sampling entirely; `every == 1`
    /// samples every call.
    pub const fn new(every: u32) -> Self {
        Sampler { every, tick: 0 }
    }

    /// Should this iteration be timed?
    #[inline]
    pub fn sample(&mut self) -> bool {
        if self.every == 0 {
            return false;
        }
        if self.tick == 0 {
            self.tick = self.every - 1;
            true
        } else {
            self.tick -= 1;
            false
        }
    }
}

/// Shared 1-in-N sampler for process-global instrumentation (e.g. the
/// predicate-kernel stage timer in `gesto-cep`, which has no per-worker
/// state to hang a [`Sampler`] on).
///
/// One relaxed `fetch_add` per decision. The modulo makes every Nth
/// global call sample regardless of which thread lands on it.
#[derive(Debug)]
pub struct SharedSampler {
    every: AtomicU32,
    tick: AtomicU32,
}

impl SharedSampler {
    /// A shared sampler firing once every `every` calls; `every == 0`
    /// disables it.
    pub const fn new(every: u32) -> Self {
        SharedSampler {
            every: AtomicU32::new(every),
            tick: AtomicU32::new(0),
        }
    }

    /// Reconfigures the sampling period (0 disables). Takes effect for
    /// subsequent decisions on all threads.
    pub fn set_every(&self, every: u32) {
        self.every.store(every, Ordering::Relaxed);
    }

    /// Current sampling period (0 = disabled).
    pub fn every(&self) -> u32 {
        self.every.load(Ordering::Relaxed)
    }

    /// Should this iteration be timed?
    #[inline]
    pub fn sample(&self) -> bool {
        let every = self.every.load(Ordering::Relaxed);
        if every == 0 {
            return false;
        }
        self.tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_fires_first_then_every_n() {
        let mut s = Sampler::new(4);
        let fired: Vec<bool> = (0..9).map(|_| s.sample()).collect();
        assert_eq!(
            fired,
            [true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn sampler_every_one_always_fires() {
        let mut s = Sampler::new(1);
        assert!((0..5).all(|_| s.sample()));
    }

    #[test]
    fn sampler_zero_disables() {
        let mut s = Sampler::new(0);
        assert!((0..5).all(|_| !s.sample()));
    }

    #[test]
    fn shared_sampler_rate_holds_across_threads() {
        static S: SharedSampler = SharedSampler::new(8);
        let hits: u32 = (0..4)
            .map(|_| std::thread::spawn(|| (0..2000).filter(|_| S.sample()).count() as u32))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .sum();
        // 8000 total decisions at 1-in-8 = exactly 1000 (fetch_add makes
        // the global sequence exact even when interleaved).
        assert_eq!(hits, 1000);
    }

    #[test]
    fn shared_sampler_set_every() {
        let s = SharedSampler::new(0);
        assert!(!s.sample());
        s.set_every(1);
        assert!(s.sample());
        assert_eq!(s.every(), 1);
    }
}

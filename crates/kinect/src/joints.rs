//! The tracked skeleton joints (OpenNI 15-joint set).

use serde::{Deserialize, Serialize};

use crate::vec3::Vec3;

/// The 15 skeleton joints delivered by OpenNI-style trackers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Joint {
    Head,
    Neck,
    Torso,
    LeftShoulder,
    LeftElbow,
    LeftHand,
    RightShoulder,
    RightElbow,
    RightHand,
    LeftHip,
    LeftKnee,
    LeftFoot,
    RightHip,
    RightKnee,
    RightFoot,
}

/// Number of tracked joints.
pub const JOINT_COUNT: usize = 15;

/// All joints in canonical (schema) order.
pub const ALL_JOINTS: [Joint; JOINT_COUNT] = [
    Joint::Head,
    Joint::Neck,
    Joint::Torso,
    Joint::LeftShoulder,
    Joint::LeftElbow,
    Joint::LeftHand,
    Joint::RightShoulder,
    Joint::RightElbow,
    Joint::RightHand,
    Joint::LeftHip,
    Joint::LeftKnee,
    Joint::LeftFoot,
    Joint::RightHip,
    Joint::RightKnee,
    Joint::RightFoot,
];

impl Joint {
    /// Canonical index in [`ALL_JOINTS`] — the discriminant, since the
    /// enum is declared in canonical order (asserted by a test).
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Field-name prefix used in tuple schemas (paper style: `rHand`,
    /// `torso`, ...). Coordinates append `_x`, `_y`, `_z`.
    pub fn prefix(&self) -> &'static str {
        match self {
            Joint::Head => "head",
            Joint::Neck => "neck",
            Joint::Torso => "torso",
            Joint::LeftShoulder => "lShoulder",
            Joint::LeftElbow => "lElbow",
            Joint::LeftHand => "lHand",
            Joint::RightShoulder => "rShoulder",
            Joint::RightElbow => "rElbow",
            Joint::RightHand => "rHand",
            Joint::LeftHip => "lHip",
            Joint::LeftKnee => "lKnee",
            Joint::LeftFoot => "lFoot",
            Joint::RightHip => "rHip",
            Joint::RightKnee => "rKnee",
            Joint::RightFoot => "rFoot",
        }
    }

    /// Parses a field-name prefix back into a joint.
    pub fn from_prefix(prefix: &str) -> Option<Joint> {
        ALL_JOINTS.iter().copied().find(|j| j.prefix() == prefix)
    }
}

/// One tracked skeleton frame: a timestamp plus an optional position per
/// joint (`None` = tracking dropout for that joint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkeletonFrame {
    /// Stream time in milliseconds.
    pub ts: i64,
    /// Player id (multi-user trackers tag each skeleton).
    pub player: i64,
    /// Joint positions in camera coordinates (mm), indexed by
    /// [`Joint::index`].
    pub joints: [Option<Vec3>; JOINT_COUNT],
}

impl SkeletonFrame {
    /// Creates a frame with all joints missing.
    pub fn empty(ts: i64, player: i64) -> Self {
        Self {
            ts,
            player,
            joints: [None; JOINT_COUNT],
        }
    }

    /// Position of a joint.
    pub fn joint(&self, j: Joint) -> Option<Vec3> {
        self.joints[j.index()]
    }

    /// Sets a joint position.
    pub fn set_joint(&mut self, j: Joint, p: Vec3) {
        self.joints[j.index()] = Some(p);
    }

    /// Removes a joint (tracking dropout).
    pub fn drop_joint(&mut self, j: Joint) {
        self.joints[j.index()] = None;
    }

    /// True when every joint is tracked.
    pub fn complete(&self) -> bool {
        self.joints.iter().all(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joint_index_roundtrip() {
        for (i, j) in ALL_JOINTS.iter().enumerate() {
            assert_eq!(j.index(), i);
        }
    }

    #[test]
    fn prefix_roundtrip() {
        for j in ALL_JOINTS {
            assert_eq!(Joint::from_prefix(j.prefix()), Some(j));
        }
        assert_eq!(Joint::from_prefix("nope"), None);
    }

    #[test]
    fn frame_accessors() {
        let mut f = SkeletonFrame::empty(10, 1);
        assert!(!f.complete());
        f.set_joint(Joint::RightHand, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(f.joint(Joint::RightHand), Some(Vec3::new(1.0, 2.0, 3.0)));
        f.drop_joint(Joint::RightHand);
        assert_eq!(f.joint(Joint::RightHand), None);
    }
}

//! Hot-path instruments: lock-free counters, gauges and the shared
//! power-of-two histogram.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// A monotonically increasing counter (one relaxed atomic add per
/// update).
///
/// `const`-constructible so hot-path crates can expose process-global
/// statics (`static FOO: Counter = Counter::new();`) and a registry can
/// export them by `'static` reference.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (one relaxed atomic RMW per update).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of independent cache-line-padded slots in a [`ShardedCounter`]
/// or [`ShardedGauge`]. Each updating thread hashes to one slot, so up
/// to this many cores can update the same instrument without a single
/// cache line ping-ponging between them.
pub const SHARDED_SLOTS: usize = 16;

/// One cache-line-isolated counter slot. 128-byte alignment covers the
/// spatial-prefetcher pair-line granularity on common x86 parts.
#[repr(align(128))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// One cache-line-isolated gauge slot (see [`PaddedU64`]).
#[repr(align(128))]
#[derive(Debug, Default)]
struct PaddedI64(AtomicI64);

/// Slot indices are handed out once per thread from this sequence, so
/// long-lived workers (shard threads, I/O threads) land on distinct
/// slots and stay there for their lifetime.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % SHARDED_SLOTS;
}

#[inline]
fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// A [`Counter`] split across [`SHARDED_SLOTS`] cache-line-padded
/// atomics: updates hit a per-thread slot, reads sum all slots.
///
/// This is the multi-core variant of the process-global statics. With a
/// plain `Counter`, every shard worker bumping e.g.
/// `gesto_nfa_matches_total` contends on one cache line, and that false
/// sharing taxes the hot path exactly when the server scales past one
/// core. Updates here are still one relaxed RMW; only `get()` (scrape
/// time) pays for the fan-in.
#[derive(Debug, Default)]
pub struct ShardedCounter {
    slots: [PaddedU64; SHARDED_SLOTS],
}

impl ShardedCounter {
    /// A counter at zero.
    pub const fn new() -> Self {
        ShardedCounter {
            slots: [const { PaddedU64(AtomicU64::new(0)) }; SHARDED_SLOTS],
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.slots[thread_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value: the sum over all slots. Relaxed per-slot loads, so
    /// a concurrent reader sees a value that was true at *some* moment —
    /// fine for scrapes and steady-state assertions.
    pub fn get(&self) -> u64 {
        self.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A [`Gauge`] split across [`SHARDED_SLOTS`] cache-line-padded atomics
/// (see [`ShardedCounter`] for why). Supports only relative updates —
/// `set()` would need cross-slot coordination, and the hot-path users
/// (NFA run accounting) are inc/dec shaped.
#[derive(Debug, Default)]
pub struct ShardedGauge {
    slots: [PaddedI64; SHARDED_SLOTS],
}

impl ShardedGauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        ShardedGauge {
            slots: [const { PaddedI64(AtomicI64::new(0)) }; SHARDED_SLOTS],
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if n != 0 {
            self.slots[thread_slot()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value: the sum over all slots (relaxed; see
    /// [`ShardedCounter::get`]).
    pub fn get(&self) -> i64 {
        self.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// Number of power-of-two buckets in [`Histogram`]: bucket `i` covers
/// `[2^i, 2^(i+1))` in the recorded unit (bucket 0 covers `[0, 2)`).
/// With microseconds that tops out above half an hour; with nanoseconds
/// above four seconds.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Lock-free histogram with power-of-two buckets, unit-agnostic
/// (callers pick µs or ns and say so in the metric name).
///
/// Cheap enough to sit on a detection hot path: one relaxed atomic
/// increment per bucket plus count/sum/max updates, no allocation ever.
/// This is the one histogram type of the runtime — the network edge's
/// e2e latency, the shards' push latency and the sampled pipeline stage
/// timers all record into it, and the registry exposes it as a
/// Prometheus cumulative-bucket histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = (64 - v.max(1).leading_zeros() as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate (bucket ceiling) of the given quantile
    /// (`0.0..=1.0`), or 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        self.max()
    }

    /// Raw bucket counts (bucket `i` = samples in `[2^i, 2^(i+1))`).
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// A point-in-time copy for exposition. Read bucket-by-bucket with
    /// relaxed loads, so concurrent recording may leave `count` and the
    /// bucket sum off by in-flight samples — fine for a scrape.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], the unit collectors hand to
/// the registry at scrape time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket counts (bucket `i` = samples in `[2^i, 2^(i+1))`).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = Histogram::new();
        h.record(0);
        h.record(1); // bucket 0: [0, 2)
        h.record(2);
        h.record(3); // bucket 1: [2, 4)
        h.record(1024); // bucket 10
        let b = h.buckets();
        assert_eq!(b[0], 2);
        assert_eq!(b[1], 2);
        assert_eq!(b[10], 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.sum(), 1030);
    }

    #[test]
    fn quantiles_are_bucket_ceilings() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(3); // bucket 1, ceiling 4
        }
        h.record(1_000_000); // bucket 19, ceiling 2^20
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(0.99), 4);
        assert_eq!(h.quantile(1.0), 1 << 20);
        assert!(h.mean() > 3.0);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty.
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);

        // Single sample: every quantile is its bucket ceiling.
        h.record(5); // bucket 2: [4, 8)
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 8, "q={q}");
        }

        // Exact bucket boundaries: 2^k lands in bucket k.
        let h = Histogram::new();
        h.record(2);
        assert_eq!(h.buckets()[1], 1);
        h.record(4);
        assert_eq!(h.buckets()[2], 1);
        // Values beyond the last bucket saturate into it.
        h.record(u64::MAX);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.buckets().iter().sum::<u64>(), 40_000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 40_000);
    }

    #[test]
    fn sharded_counter_sums_across_threads() {
        static C: ShardedCounter = ShardedCounter::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..10_000 {
                        C.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        C.add(5);
        assert_eq!(C.get(), 80_005);
    }

    #[test]
    fn sharded_gauge_balances_across_threads() {
        static G: ShardedGauge = ShardedGauge::new();
        let up: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1_000 {
                        G.inc();
                    }
                })
            })
            .collect();
        for t in up {
            t.join().unwrap();
        }
        // Decrements from a different thread than the increments must
        // still net out: slots are summed, not per-thread balances.
        std::thread::spawn(|| {
            for _ in 0..4_000 {
                G.dec();
            }
        })
        .join()
        .unwrap();
        assert_eq!(G.get(), 0);
        G.add(-7);
        assert_eq!(G.get(), -7);
    }

    #[test]
    fn counter_and_gauge() {
        static C: Counter = Counter::new();
        C.inc();
        C.add(41);
        assert_eq!(C.get(), 42);

        static G: Gauge = Gauge::new();
        G.add(10);
        G.dec();
        assert_eq!(G.get(), 9);
        G.set(-3);
        assert_eq!(G.get(), -3);
    }
}
